module Tree = Axml_xml.Tree
module Forest = Axml_xml.Forest
module Label = Axml_xml.Label
module Node_id = Axml_xml.Node_id
module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names

type error = Truncated | Malformed of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated frame"
  | Malformed m -> Format.fprintf fmt "malformed frame: %s" m

exception Err of error

let truncated () = raise (Err Truncated)
let malformed m = raise (Err (Malformed m))

let magic = 0xA7
let version = 0x01

(* ---------- varints ---------- *)

(* LEB128.  [uv] writes a non-negative-interpreted int as up to 9
   groups of 7 bits (63 bits, the full OCaml int range); [zv] zigzags
   first so small negative scalars (op = -1) stay one byte. *)

let rec uv_size n = if n land lnot 0x7f = 0 then 1 else 1 + uv_size (n lsr 7)
let zig n = (n lsl 1) lxor (n asr 62)
let unzig v = (v lsr 1) lxor (-(v land 1))
let zv_size n = uv_size (zig n)

let buf_uv b n =
  let rec go n =
    if n land lnot 0x7f = 0 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let buf_zv b n = buf_uv b (zig n)

let buf_str b s =
  buf_uv b (String.length s);
  Buffer.add_string b s

let str_size s = uv_size (String.length s) + String.length s

(* ---------- bounded reader ---------- *)

type rd = { buf : Bytes.t; mutable pos : int; limit : int }

let rd_byte r =
  if r.pos >= r.limit then truncated ();
  let c = Char.code (Bytes.get r.buf r.pos) in
  r.pos <- r.pos + 1;
  c

let rd_uv r =
  let rec go shift acc =
    if shift > 56 then malformed "varint overflow";
    let c = rd_byte r in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let rd_zv r = unzig (rd_uv r)

let rd_len r =
  let n = rd_uv r in
  if n < 0 || n > r.limit - r.pos then truncated ();
  n

(* A declared element count; each element needs at least [per] bytes,
   which bounds preallocation against corrupt counts. *)
let rd_count r ~per =
  let n = rd_uv r in
  if n < 0 || n > (r.limit - r.pos) / per then malformed "count exceeds frame";
  n

let rd_str r =
  let n = rd_len r in
  let s = Bytes.sub_string r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let rd_skip r n =
  if n > r.limit - r.pos then truncated ();
  r.pos <- r.pos + n

(* ---------- tree blobs ----------

   A tree is encoded as a self-contained blob: an interned string
   table (labels, attribute names, identifier namespaces, in first-use
   order) followed by the node structure referencing table indices.
   Blobs are cached per tree in a weak pointer-keyed table, so a
   shared tree (the flash-crowd request and package payloads) is
   encoded once no matter how many messages carry it, and sizing a
   message that carries it is a length lookup. *)

let encode_tree_blob t =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] and next = ref 0 in
  let intern s =
    match Hashtbl.find_opt tbl s with
    | Some i -> i
    | None ->
        let i = !next in
        Hashtbl.add tbl s i;
        order := s :: !order;
        incr next;
        i
  in
  let rec collect = function
    | Tree.Text _ -> ()
    | Tree.Element e ->
        ignore (intern (Label.to_string e.label));
        ignore (intern (Node_id.namespace e.id));
        List.iter (fun (k, _) -> ignore (intern k)) e.attrs;
        List.iter collect e.children
  in
  collect t;
  let b = Buffer.create 128 in
  buf_uv b !next;
  List.iter (buf_str b) (List.rev !order);
  let idx s = Hashtbl.find tbl s in
  let rec node = function
    | Tree.Text s ->
        Buffer.add_char b '\x02';
        buf_str b s
    | Tree.Element e ->
        Buffer.add_char b '\x01';
        buf_uv b (idx (Label.to_string e.label));
        buf_uv b (idx (Node_id.namespace e.id));
        buf_uv b (Node_id.counter e.id);
        buf_uv b (List.length e.attrs);
        List.iter
          (fun (k, v) ->
            buf_uv b (idx k);
            buf_str b v)
          e.attrs;
        buf_uv b (List.length e.children);
        List.iter node e.children
  in
  node t;
  Buffer.to_bytes b

(* ---------- blob length without the blob ----------

   Byte accounting sizes every outbound message, and most carried
   trees are one-shot: materializing the encoded blob (buffer, intern
   table, copy) just to learn its length would make the binary wire
   allocate more than the XML model's arithmetic walk.  So sizing has
   its own pure-arithmetic pass that mirrors [encode_tree_blob]
   byte-for-byte: same pre-order traversal, hence the same first-use
   intern order, hence the same index widths.  The scratch intern
   table is reused across calls ([Hashtbl.clear] keeps the bucket
   array) and probed with [Hashtbl.find] (the raise allocates
   nothing, unlike [find_opt]'s [Some]), so sizing a fresh tree
   allocates only the table's bucket cells. *)

let size_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let size_count = ref 0
let size_strings = ref 0

let size_intern s =
  match Hashtbl.find size_tbl s with
  | i -> i
  | exception Not_found ->
      let i = !size_count in
      Hashtbl.add size_tbl s i;
      incr size_count;
      size_strings := !size_strings + str_size s;
      i

(* Interning is order-sensitive (index width depends on assignment
   order), so side-effecting calls are sequenced with [let] — OCaml
   evaluates operands of [+] right to left. *)
let rec size_node acc = function
  | Tree.Text s -> acc + 1 + str_size s
  | Tree.Element e ->
      let lbl = uv_size (size_intern (Label.to_string e.label)) in
      let ns = uv_size (size_intern (Node_id.namespace e.id)) in
      let acc =
        acc + 1 + lbl + ns
        + uv_size (Node_id.counter e.id)
        + uv_size (List.length e.attrs)
        + uv_size (List.length e.children)
      in
      let acc = List.fold_left size_attr acc e.attrs in
      List.fold_left size_node acc e.children

and size_attr acc (k, v) = acc + uv_size (size_intern k) + str_size v

let tree_blob_size t =
  Hashtbl.clear size_tbl;
  size_count := 0;
  size_strings := 0;
  let body = size_node 0 t in
  uv_size !size_count + !size_strings + body

(* Direct-mapped physical-identity cache of blob lengths: shared trees
   (flash-crowd request and package payloads) are carried by fresh
   messages, so a per-message cache would always miss — this one is
   keyed by the tree itself and costs zero allocation on a hit.  Slots
   are indexed by node identifier, disambiguated by [==] (a rebuilt
   tree with a preserved id lands in the same slot but fails the
   identity check and is re-measured).  Entries are strong references,
   so the cache pins at most [len_slots] trees — a bounded, deliberate
   trade for allocation-free sizing. *)

let len_slots = 4096
let len_keys = Array.make len_slots (Tree.text "")
let len_vals = Array.make len_slots 0

let tree_blob_len t =
  match t with
  (* an empty string table still has its one-byte count header *)
  | Tree.Text s -> 2 + str_size s
  | Tree.Element e ->
      let i =
        (Node_id.counter e.id * 0x9e3779b1)
        lxor Hashtbl.hash (Node_id.namespace e.id)
        land (len_slots - 1)
      in
      if len_keys.(i) == t then len_vals.(i)
      else begin
        let n = tree_blob_size t in
        len_keys.(i) <- t;
        len_vals.(i) <- n;
        n
      end

module Blob_tbl = Ephemeron.K1.Make (struct
  type t = Tree.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let blob_tbl = Blob_tbl.create 1024

let tree_blob t =
  match Blob_tbl.find_opt blob_tbl t with
  | Some b -> b
  | None ->
      let b = encode_tree_blob t in
      Blob_tbl.add blob_tbl t b;
      b

let decode_tree_blob r =
  let nstrings = rd_count r ~per:1 in
  let strings = Array.make (max nstrings 1) "" in
  for i = 0 to nstrings - 1 do
    strings.(i) <- rd_str r
  done;
  let str i =
    if i < 0 || i >= nstrings then malformed "string index out of range"
    else strings.(i)
  in
  let rec node depth =
    if depth > 10_000 then malformed "tree too deep";
    match rd_byte r with
    | 0x02 -> Tree.text (rd_str r)
    | 0x01 ->
        let label =
          match Label.of_string_opt (str (rd_uv r)) with
          | Some l -> l
          | None -> malformed "invalid label"
        in
        let ns = str (rd_uv r) in
        let counter = rd_uv r in
        let id =
          match Node_id.make ~ns ~counter with
          | Some id -> id
          | None -> malformed "invalid node identifier"
        in
        let nattrs = rd_count r ~per:2 in
        let attrs =
          List.init nattrs (fun _ ->
              let k = str (rd_uv r) in
              let v = rd_str r in
              (k, v))
        in
        let nchildren = rd_count r ~per:1 in
        let children = List.init nchildren (fun _ -> node (depth + 1)) in
        Tree.with_id id ~attrs label children
    | k -> malformed (Printf.sprintf "unknown node tag %#x" k)
  in
  node 0

(* ---------- forest sections ----------

   forest := uv(ntrees) { uv(blob_len) blob }*

   The per-tree length prefixes are the offset index: a reader can
   locate every tree (and the end of the section) without parsing any
   blob, which is what makes lazy decode and zero-parse relay slicing
   possible. *)

let forest_section_size lf =
  let open Message in
  if lf.wire >= 0 then lf.wire
  else
    let n =
      match lf.st with
      | Todo { enc = _, _, len; _ } -> len
      | Done f ->
          List.fold_left
            (fun acc t ->
              let len = tree_blob_len t in
              acc + uv_size len + len)
            (uv_size (List.length f))
            f
    in
    lf.wire <- n;
    n

let buf_forest b lf =
  let open Message in
  match lf.st with
  | Todo { enc = src, off, len; _ } -> Buffer.add_subbytes b src off len
  | Done f ->
      buf_uv b (List.length f);
      List.iter
        (fun t ->
          let blob = tree_blob t in
          buf_uv b (Bytes.length blob);
          Buffer.add_bytes b blob)
        f

(* Skips over a forest section, returning the lazy forest backed by
   the frame slice.  Only length prefixes are read — no blob is
   parsed until the forest is forced. *)
let rd_forest r =
  let start = r.pos in
  let ntrees = rd_count r ~per:1 in
  let offs =
    List.init ntrees (fun _ ->
        let len = rd_len r in
        let o = r.pos in
        rd_skip r len;
        (o, len))
  in
  let slice_len = r.pos - start in
  let buf = r.buf in
  let decode () =
    List.map
      (fun (o, len) -> decode_tree_blob { buf; pos = o; limit = o + len })
      offs
  in
  let lf = Message.delay ~trees:ntrees ~enc:(buf, start, slice_len) decode in
  lf.Message.wire <- slice_len;
  lf

(* ---------- scalars, names, destinations ---------- *)

let buf_bool b v = Buffer.add_char b (if v then '\x01' else '\x00')

let rd_bool r =
  match rd_byte r with
  | 0 -> false
  | 1 -> true
  | _ -> malformed "invalid boolean"

let buf_peer b p = buf_str b (Peer_id.to_string p)

let rd_peer r =
  match Peer_id.of_string_opt (rd_str r) with
  | Some p -> p
  | None -> malformed "invalid peer identifier"

let buf_node_id b id =
  buf_str b (Node_id.namespace id);
  buf_uv b (Node_id.counter id)

let node_id_size id = str_size (Node_id.namespace id) + uv_size (Node_id.counter id)

let rd_node_id r =
  let ns = rd_str r in
  let counter = rd_uv r in
  match Node_id.make ~ns ~counter with
  | Some id -> id
  | None -> malformed "invalid node identifier"

let buf_dest b = function
  | Message.Cont { peer; key } ->
      Buffer.add_char b '\x00';
      buf_peer b peer;
      buf_zv b key
  | Message.Node { Names.Node_ref.node; peer } ->
      Buffer.add_char b '\x01';
      buf_node_id b node;
      buf_peer b peer
  | Message.Install { peer; name } ->
      Buffer.add_char b '\x02';
      buf_peer b peer;
      buf_str b name

let dest_size = function
  | Message.Cont { peer; key } ->
      1 + str_size (Peer_id.to_string peer) + zv_size key
  | Message.Node { Names.Node_ref.node; peer } ->
      1 + node_id_size node + str_size (Peer_id.to_string peer)
  | Message.Install { peer; name } ->
      1 + str_size (Peer_id.to_string peer) + str_size name

let rd_dest r =
  match rd_byte r with
  | 0 ->
      let peer = rd_peer r in
      let key = rd_zv r in
      Message.Cont { peer; key }
  | 1 ->
      let node = rd_node_id r in
      let peer = rd_peer r in
      Message.Node (Names.Node_ref.make ~node ~peer)
  | 2 ->
      let peer = rd_peer r in
      let name = rd_str r in
      Message.Install { peer; name }
  | k -> malformed (Printf.sprintf "unknown destination tag %#x" k)

let buf_dests b ds =
  buf_uv b (List.length ds);
  List.iter (buf_dest b) ds

let dests_size ds =
  List.fold_left (fun acc d -> acc + dest_size d) (uv_size (List.length ds)) ds

let rd_dests r =
  let n = rd_count r ~per:2 in
  List.init n (fun _ -> rd_dest r)

let buf_notify b = function
  | None -> Buffer.add_char b '\x00'
  | Some (peer, key) ->
      Buffer.add_char b '\x01';
      buf_peer b peer;
      buf_zv b key

let notify_size = function
  | None -> 1
  | Some (peer, key) -> 1 + str_size (Peer_id.to_string peer) + zv_size key

let rd_notify r =
  match rd_byte r with
  | 0 -> None
  | 1 ->
      let peer = rd_peer r in
      let key = rd_zv r in
      Some (peer, key)
  | _ -> malformed "invalid option tag"

(* Expressions and queries travel textually-equivalent but compact:
   an expression as one tree blob of its XML view, a query as its
   surface syntax (both have exact parse round-trips). *)

let expr_blob e =
  let gen = Node_id.Gen.create ~namespace:"wire-expr" in
  encode_tree_blob (Axml_algebra.Expr_xml.to_tree ~gen e)

let rd_expr r =
  let len = rd_len r in
  let sub = { buf = r.buf; pos = r.pos; limit = r.pos + len } in
  rd_skip r len;
  let t = decode_tree_blob sub in
  if sub.pos <> sub.limit then malformed "trailing bytes in expression blob";
  match Axml_algebra.Expr_xml.of_tree t with
  | Ok e -> e
  | Error m -> malformed ("invalid expression: " ^ m)

let rd_query r =
  match Axml_query.Parser.parse (rd_str r) with
  | Ok q -> q
  | Error _ -> malformed "invalid query"

(* ---------- payloads ---------- *)

let kind_of = function
  | Message.Stream _ -> 0
  | Message.Eval_request _ -> 1
  | Message.Invoke _ -> 2
  | Message.Insert _ -> 3
  | Message.Install_doc _ -> 4
  | Message.Deploy _ -> 5
  | Message.Query_shipped _ -> 6
  | Message.Ack _ -> 7
  | Message.Batch _ -> 8
  | Message.Migrate_doc _ -> 9
  | Message.Retract_doc _ -> 10

(* [forests] selects whether forest sections are emitted: [`Inline]
   for ordinary messages, [`Omit] for the deduplicated body of a
   [Shared] batch item (the receiver resolves the back-reference). *)
let rec buf_payload b ~forests p =
  Buffer.add_char b (Char.chr (kind_of p));
  match p with
  | Message.Stream { key; forest; final } ->
      buf_zv b key;
      buf_bool b final;
      (match forests with `Inline -> buf_forest b forest | `Omit -> ())
  | Message.Eval_request { expr; replies; ack } ->
      let blob = expr_blob expr in
      buf_uv b (Bytes.length blob);
      Buffer.add_bytes b blob;
      buf_dests b replies;
      buf_notify b ack
  | Message.Invoke { service; params; replies } ->
      buf_str b (Names.Service_name.to_string service);
      buf_uv b (List.length params);
      List.iter (buf_forest b) params;
      buf_dests b replies
  | Message.Insert { node; forest; notify } ->
      buf_node_id b node;
      buf_notify b notify;
      (match forests with `Inline -> buf_forest b forest | `Omit -> ())
  | Message.Install_doc { name; forest; notify } ->
      buf_str b name;
      buf_notify b notify;
      (match forests with `Inline -> buf_forest b forest | `Omit -> ())
  | Message.Migrate_doc { name; forest; notify } ->
      buf_str b name;
      buf_notify b notify;
      (match forests with `Inline -> buf_forest b forest | `Omit -> ())
  | Message.Retract_doc { name; notify } ->
      buf_str b name;
      buf_notify b notify
  | Message.Deploy { prefix; query; reply } ->
      buf_str b prefix;
      buf_str b (Axml_query.Ast.to_string query);
      buf_dest b reply
  | Message.Query_shipped { key; query } ->
      buf_zv b key;
      buf_str b (Axml_query.Ast.to_string query)
  | Message.Ack { seq } -> buf_zv b seq
  | Message.Batch { items; ack } ->
      buf_zv b ack;
      buf_uv b (List.length items);
      List.iter
        (function
          | Message.Full m ->
              Buffer.add_char b '\x00';
              buf_uv b (subbody_size ~forests:`Inline m);
              buf_subbody b ~forests:`Inline m
          | Message.Shared { msg; of_seq; saved } ->
              Buffer.add_char b '\x01';
              buf_zv b of_seq;
              buf_uv b saved;
              buf_uv b (subbody_size ~forests:`Omit msg);
              buf_subbody b ~forests:`Omit msg)
        items

and buf_subbody b ~forests (m : Message.t) =
  buf_zv b m.corr;
  buf_zv b m.seq;
  buf_zv b m.op;
  buf_payload b ~forests m.payload

and payload_size ~forests p =
  1
  +
  match p with
  | Message.Stream { key; forest; _ } ->
      zv_size key + 1
      + (match forests with
        | `Inline -> forest_section_size forest
        | `Omit -> 0)
  | Message.Eval_request { expr; replies; ack } ->
      let blen = Bytes.length (expr_blob expr) in
      uv_size blen + blen + dests_size replies + notify_size ack
  | Message.Invoke { service; params; replies } ->
      str_size (Names.Service_name.to_string service)
      + uv_size (List.length params)
      + List.fold_left (fun acc f -> acc + forest_section_size f) 0 params
      + dests_size replies
  | Message.Insert { node; forest; notify } ->
      node_id_size node + notify_size notify
      + (match forests with
        | `Inline -> forest_section_size forest
        | `Omit -> 0)
  | Message.Install_doc { name; forest; notify } ->
      str_size name + notify_size notify
      + (match forests with
        | `Inline -> forest_section_size forest
        | `Omit -> 0)
  | Message.Migrate_doc { name; forest; notify } ->
      str_size name + notify_size notify
      + (match forests with
        | `Inline -> forest_section_size forest
        | `Omit -> 0)
  | Message.Retract_doc { name; notify } -> str_size name + notify_size notify
  | Message.Deploy { prefix; query; reply } ->
      str_size prefix
      + str_size (Axml_query.Ast.to_string query)
      + dest_size reply
  | Message.Query_shipped { key; query } ->
      zv_size key + str_size (Axml_query.Ast.to_string query)
  | Message.Ack { seq } -> zv_size seq
  | Message.Batch { items; ack } ->
      zv_size ack + uv_size (List.length items) + batch_items_size 0 items

(* A named member of the recursive group rather than an inline fold:
   an anonymous closure referencing the group is re-allocated on every
   call, and this runs once per flushed frame on the hot path. *)
and batch_items_size acc = function
  | [] -> acc
  | Message.Full m :: rest ->
      let s = subbody_size ~forests:`Inline m in
      batch_items_size (acc + 1 + uv_size s + s) rest
  | Message.Shared { msg; of_seq; saved } :: rest ->
      let s = subbody_size ~forests:`Omit msg in
      batch_items_size (acc + 1 + zv_size of_seq + uv_size saved + uv_size s + s) rest

and subbody_size ~forests (m : Message.t) =
  zv_size m.corr + zv_size m.seq + zv_size m.op + payload_size ~forests m.payload

(* ---------- frames ---------- *)

let body_size (m : Message.t) =
  2 + zv_size m.corr + zv_size m.seq + zv_size m.op
  + payload_size ~forests:`Inline m.payload

let frame_bytes (m : Message.t) =
  let b = body_size m in
  uv_size b + b

let encode (m : Message.t) =
  let b = Buffer.create 256 in
  buf_uv b (body_size m);
  Buffer.add_char b (Char.chr magic);
  Buffer.add_char b (Char.chr version);
  buf_zv b m.corr;
  buf_zv b m.seq;
  buf_zv b m.op;
  buf_payload b ~forests:`Inline m.payload;
  Buffer.to_bytes b

let rec rd_payload r ~forest_src =
  let kind = rd_byte r in
  match kind with
  | 0 ->
      let key = rd_zv r in
      let final = rd_bool r in
      let forest = rd_forest_or_ref r forest_src in
      Message.Stream { key; forest; final }
  | 1 ->
      let expr = rd_expr r in
      let replies = rd_dests r in
      let ack = rd_notify r in
      Message.Eval_request { expr; replies; ack }
  | 2 ->
      let service =
        match Names.Service_name.of_string_opt (rd_str r) with
        | Some s -> s
        | None -> malformed "invalid service name"
      in
      let nparams = rd_count r ~per:1 in
      let params = List.init nparams (fun _ -> rd_forest r) in
      let replies = rd_dests r in
      Message.Invoke { service; params; replies }
  | 3 ->
      let node = rd_node_id r in
      let notify = rd_notify r in
      let forest = rd_forest_or_ref r forest_src in
      Message.Insert { node; forest; notify }
  | 4 ->
      let name = rd_str r in
      let notify = rd_notify r in
      let forest = rd_forest_or_ref r forest_src in
      Message.Install_doc { name; forest; notify }
  | 9 ->
      let name = rd_str r in
      let notify = rd_notify r in
      let forest = rd_forest_or_ref r forest_src in
      Message.Migrate_doc { name; forest; notify }
  | 10 ->
      let name = rd_str r in
      let notify = rd_notify r in
      Message.Retract_doc { name; notify }
  | 5 ->
      let prefix = rd_str r in
      let query = rd_query r in
      let reply = rd_dest r in
      Message.Deploy { prefix; query; reply }
  | 6 ->
      let key = rd_zv r in
      let query = rd_query r in
      Message.Query_shipped { key; query }
  | 7 -> Message.Ack { seq = rd_zv r }
  | 8 ->
      let ack = rd_zv r in
      let nitems = rd_count r ~per:2 in
      (* Maps an item's sequence number to its shareable forest, for
         resolving back-references.  Sharing is reconstructed exactly:
         a [Shared] item's payload holds the {e same} lazy forest as
         its referent, so forcing either decodes once. *)
      let shared : (int, Message.lforest) Hashtbl.t = Hashtbl.create 8 in
      let items =
        List.init nitems (fun _ ->
            match rd_byte r with
            | 0 ->
                let m = rd_subitem r ~forest_src:`Inline in
                (match Message.shareable_forest m.Message.payload with
                | Some lf -> Hashtbl.replace shared m.Message.seq lf
                | None -> ());
                Message.Full m
            | 1 ->
                let of_seq = rd_zv r in
                let saved = rd_uv r in
                let lf =
                  match Hashtbl.find_opt shared of_seq with
                  | Some lf -> lf
                  | None -> malformed "dangling batch back-reference"
                in
                let msg = rd_subitem r ~forest_src:(`Ref lf) in
                Message.Shared { msg; of_seq; saved }
            | k -> malformed (Printf.sprintf "unknown batch item tag %#x" k))
      in
      Message.Batch { items; ack }
  | k -> malformed (Printf.sprintf "unknown payload kind %#x" k)

and rd_forest_or_ref r = function
  | `Inline -> rd_forest r
  | `Ref lf -> lf

and rd_subitem r ~forest_src =
  let sublen = rd_len r in
  let sub = { buf = r.buf; pos = r.pos; limit = r.pos + sublen } in
  rd_skip r sublen;
  let corr = rd_zv sub in
  let seq = rd_zv sub in
  let op = rd_zv sub in
  let payload = rd_payload sub ~forest_src in
  if sub.pos <> sub.limit then malformed "trailing bytes in batch item";
  Message.make ~corr ~seq ~op payload

let decode buf =
  try
    let r = { buf; pos = 0; limit = Bytes.length buf } in
    let blen = rd_uv r in
    if blen < 0 || blen > r.limit - r.pos then truncated ();
    if blen < r.limit - r.pos then malformed "over-length frame";
    if rd_byte r <> magic then malformed "bad magic";
    if rd_byte r <> version then malformed "unsupported version";
    let corr = rd_zv r in
    let seq = rd_zv r in
    let op = rd_zv r in
    let payload = rd_payload r ~forest_src:`Inline in
    if r.pos <> r.limit then malformed "trailing payload bytes";
    Ok (Message.make ~corr ~seq ~op payload)
  with
  | Err e -> Error e
  | Invalid_argument m -> Error (Malformed m)

(* Forces every forest a message carries (including batch items);
   used by strict decoding and tests. *)
let rec force_all (m : Message.t) =
  match m.payload with
  | Message.Stream { forest; _ }
  | Message.Insert { forest; _ }
  | Message.Install_doc { forest; _ }
  | Message.Migrate_doc { forest; _ } ->
      ignore (Message.force forest)
  | Message.Invoke { params; _ } ->
      List.iter (fun lf -> ignore (Message.force lf)) params
  | Message.Batch { items; _ } ->
      List.iter (fun item -> force_all (Message.item_message item)) items
  | Message.Eval_request _ | Message.Deploy _ | Message.Query_shipped _
  | Message.Ack _ | Message.Retract_doc _ ->
      ()

let decode_strict buf =
  match decode buf with
  | Error _ as e -> e
  | Ok m -> (
      match force_all m with
      | () -> Ok m
      | exception Err e -> Error e
      | exception Invalid_argument s -> Error (Malformed s))

let roundtrip m =
  match decode (encode m) with
  | Ok m' -> m'
  | Error e -> invalid_arg (Format.asprintf "Codec.roundtrip: %a" pp_error e)

(* ---------- zero-parse relay slicing ----------

   A relay (the paper's rule (12) intermediary) re-batches frames
   without interpreting payloads: it slices a batch frame along the
   per-item length prefixes, reads only the scalar headers it routes
   on, and blits the slices into a fresh frame.  No forest blob is
   ever parsed — Message.payload_decodes stays flat. *)

module Relay = struct
  type item = {
    src : Bytes.t;
    off : int;  (** item start: the tag byte *)
    len : int;  (** full item extent, tag byte included *)
    seq : int;  (** sequence number read from the item header *)
    of_seq : int;  (** back-reference target, [-1] for full items *)
  }

  let item_seq it = it.seq
  let item_of_seq it = it.of_seq
  let is_shared it = it.of_seq >= 0

  let parse_batch buf =
    try
      let r = { buf; pos = 0; limit = Bytes.length buf } in
      let blen = rd_uv r in
      if blen < 0 || blen > r.limit - r.pos then truncated ();
      if blen < r.limit - r.pos then malformed "over-length frame";
      if rd_byte r <> magic then malformed "bad magic";
      if rd_byte r <> version then malformed "unsupported version";
      let _corr = rd_zv r in
      let _seq = rd_zv r in
      let _op = rd_zv r in
      if rd_byte r <> 8 then malformed "not a batch frame";
      let ack = rd_zv r in
      let nitems = rd_count r ~per:2 in
      let items =
        List.init nitems (fun _ ->
            let off = r.pos in
            let of_seq =
              match rd_byte r with
              | 0 -> -1
              | 1 ->
                  let of_seq = rd_zv r in
                  let _saved = rd_uv r in
                  of_seq
              | k -> malformed (Printf.sprintf "unknown batch item tag %#x" k)
            in
            let sublen = rd_len r in
            let hdr = { buf; pos = r.pos; limit = r.pos + sublen } in
            let _corr = rd_zv hdr in
            let seq = rd_zv hdr in
            rd_skip r sublen;
            { src = buf; off; len = r.pos - off; seq; of_seq })
      in
      if r.pos <> r.limit then malformed "trailing payload bytes";
      Ok (ack, items)
    with
    | Err e -> Error e
    | Invalid_argument m -> Error (Malformed m)

  let rebatch ?(corr = 0) ?(seq = 0) ?(op = -1) ~ack items =
    let b = Buffer.create 256 in
    Buffer.add_char b '\x08';
    buf_zv b ack;
    buf_uv b (List.length items);
    List.iter (fun it -> Buffer.add_subbytes b it.src it.off it.len) items;
    let payload = Buffer.to_bytes b in
    let body =
      2 + zv_size corr + zv_size seq + zv_size op + Bytes.length payload
    in
    let out = Buffer.create (uv_size body + body) in
    buf_uv out body;
    Buffer.add_char out (Char.chr magic);
    Buffer.add_char out (Char.chr version);
    buf_zv out corr;
    buf_zv out seq;
    buf_zv out op;
    Buffer.add_bytes out payload;
    Buffer.to_bytes out
end
