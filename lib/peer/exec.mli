(** Expression evaluation — definitions (1)–(9) of Section 3.2.

    [eval sys ~ctx e ~emit] starts the evaluation of e\@ctx.  Work is
    scheduled on the system's simulator; call {!System.run} to drive
    it.  [emit] fires at [ctx] for every result batch of the
    expression's stream ("a stream is a flow of XML trees which
    accumulate", Section 3.2); the [final] flag closes the stream.

    How the definitions map here:
    - (1)/(2): local data and local query application evaluate in
      place; continuous semantics comes from
      {!Axml_query.Incremental} — each incoming argument batch
      produces a delta batch;
    - (3)/(4): [send] evaluates at the site of its operand and moves
      the copy; side-effecting sends yield ∅;
    - (5): a remote operand turns into an [Eval_request] delegation to
      its home peer, which streams the result back;
    - (6): sc-rooted trees ship parameters to the provider, whose
      responses flow to the forward list (or back to the caller);
    - (7): a query applied away from its home is shipped to the
      application site (charged on the link);
    - (8): send(p2, q) deploys q as a fresh service at p2;
    - (9): generic documents and services resolve through the
      evaluating peer's catalog and pick policy. *)

val eval :
  System.t ->
  ctx:Axml_net.Peer_id.t ->
  Axml_algebra.Expr.t ->
  emit:System.emit ->
  unit

type outcome = {
  results : Axml_xml.Forest.t;  (** Concatenated batches, arrival order. *)
  finished : bool;  (** Whether the stream closed. *)
  stats : Axml_net.Stats.snapshot;  (** Network activity of the run. *)
  elapsed_ms : float;
  termination : Axml_net.Sim.outcome;
      (** [`Budget_exhausted] means the event guard cut the run short:
          [results]/[stats] describe a truncated computation. *)
  events : int;  (** Simulator events processed. *)
}

val run_to_quiescence :
  ?reset_stats:bool ->
  ?max_events:int ->
  System.t ->
  ctx:Axml_net.Peer_id.t ->
  Axml_algebra.Expr.t ->
  outcome
(** Evaluate, drive the simulator until no messages remain, and
    collect everything the expression emitted.  [reset_stats]
    (default [true]) zeroes the transfer counters first so the
    snapshot describes just this evaluation.

    When {!Axml_obs.Trace} is enabled, the run mints one correlation
    id, records an ["execute"] span at [ctx], and every message the
    computation causes carries the id — so its spans can be followed
    across peers in the exported trace. *)

type profiled = {
  outcome : outcome;
  report : Profiler.report;
      (** Per-operator estimate-vs-observed table; see {!Profiler}. *)
}

val run_profiled :
  ?reset_stats:bool ->
  ?max_events:int ->
  System.t ->
  ctx:Axml_net.Peer_id.t ->
  Axml_algebra.Expr.t ->
  profiled
(** EXPLAIN ANALYZE: evaluate the expression with tracing forced on
    (sampling disabled for the run, both settings restored afterwards)
    and the ambient operator id rooted at [0], then fold the recorded
    spans back onto the plan's operators.  The report pairs each
    operator's observed exclusive sim time, CPU, bytes, messages and
    index hits with the planner's {!Axml_algebra.Cost} estimate, and
    feeds each operator's estimate-error ratio into the
    [profiler/est_error_ratio] histogram of {!Axml_obs.Metrics}. *)

val run_optimized :
  ?reset_stats:bool ->
  ?max_events:int ->
  ?strategy:Axml_algebra.Optimizer.strategy ->
  ?objective:(Axml_algebra.Cost.t -> float) ->
  ?visited:Axml_algebra.Optimizer.visited_impl ->
  ?stats:Axml_query.Selectivity.Stats.t list ->
  System.t ->
  ctx:Axml_net.Peer_id.t ->
  Axml_algebra.Expr.t ->
  Axml_algebra.Planner.result * outcome
(** Optimize-before-evaluate: run the unified planner against the
    live system's own cost oracles ({!System.cost_env}), then execute
    the chosen plan under the simulator.  [strategy] defaults to
    [Best_first { max_expansions = 32 }].  Returns the planner's
    explainable result alongside the measured outcome, so scenarios
    can compare estimated against observed cost. *)
