(* The adaptive placement controller (DESIGN.md §17).

   On a sim-clock tick it reads the windowed Timeseries signals —
   per-document read rates, per-peer transmit load — scores hot
   document classes against underloaded peers and executes live
   migrations over the existing Reliable transport:

     1. snapshot the source replica's root (the checkpoint),
     2. register the forwarding link at the source, so streaming
        appends that land mid-handoff are re-shipped to the target,
     3. ship the snapshot as a [Migrate_doc] (id-preserving, so the
        target answers to the same node refs),
     4. on the target's acknowledgement, register the new replica in
        its generic class (and optionally retire the source member).

   Reliable FIFO per (src, dst) direction does the heavy lifting of
   the correctness argument: the snapshot leaves before any append
   forwarded after it, so the target applies exactly the appends the
   snapshot misses; a post-abort [Retract_doc], also sent from the
   source, is sequenced after any still-in-flight ship and cannot
   leave an orphan behind.

   Determinism: each tick's decisions are a pure function
   ({!plan_tick}) of a {!signals} snapshot plus the controller's own
   seeded {!Axml_net.Rng}, and ticks ride the simulator's Control
   queue — same-seed runs replay the same migration schedule
   byte-for-byte, which the placement determinism suite checks. *)

module Sim = Axml_net.Sim
module Rng = Axml_net.Rng
module Peer_id = Axml_net.Peer_id
module Timeseries = Axml_obs.Timeseries
module Names = Axml_doc.Names
module Generic = Axml_doc.Generic
module Tree = Axml_xml.Tree

type config = {
  tick_ms : float;
  windows : int;
  hot_rate : float;
  max_replicas : int;
  migrations_per_tick : int;
  handoff_timeout_ms : float;
  retire_source : bool;
  seed : int;
  eligible : (Peer_id.t -> bool) option;
}

let default_config =
  {
    tick_ms = 100.0;
    windows = 3;
    hot_rate = 50.0;
    max_replicas = 3;
    migrations_per_tick = 1;
    handoff_timeout_ms = 1000.0;
    retire_source = false;
    seed = 1;
    eligible = None;
  }

type phase = Shipping | Committed | Aborted

type migration = {
  m_id : int;
  m_class : string;
  m_doc : string;
  m_src : Peer_id.t;
  m_dst : Peer_id.t;
  m_started_ms : float;
  mutable m_phase : phase;
  mutable m_committed_ms : float;
  mutable m_cleaned : bool;
}

type t = {
  sys : System.t;
  cfg : config;
  rng : Rng.t;
  mutable log : migration list;  (* newest first *)
  mutable next_id : int;
  mutable ticks : int;
  mutable stopped : bool;
}

type stats = {
  s_ticks : int;
  s_started : int;
  s_committed : int;
  s_aborted : int;
}

(* ---- signals -------------------------------------------------- *)

(* Everything {!plan_tick} is allowed to know about the world,
   gathered in one impure sweep so the planning itself stays pure
   (and unit-testable against synthetic snapshots). *)
type signals = {
  sig_classes : (string * Names.Doc_ref.t list) list;
  sig_doc_rate : string -> float;
  sig_peer_load : Peer_id.t -> float;
  sig_live : Peer_id.t -> bool;
  sig_holds : Peer_id.t -> string -> bool;
  sig_peers : Peer_id.t list;
  sig_busy : string -> bool;
}

type decision = {
  d_class : string;
  d_doc : string;
  d_src : Peer_id.t;
  d_dst : Peer_id.t;
}

(* The windowed per-peer load signal, shared with the [Load_steered]
   pick policy.  [None] — not a zero — when there is nothing to read:
   telemetry disabled, no complete window yet, or a non-finite
   reading.  ({!Timeseries.rate} itself returns 0.0 on an empty
   window, which would be indistinguishable from a genuinely idle
   peer; the epoch guard is what keeps a cold start from reading
   "everyone idle" and steering traffic at random.) *)
let load_gauge ?(windows = 3) sys p =
  let reg = Timeseries.default in
  if not (Timeseries.is_on reg) then None
  else
    let now = Sim.now (System.sim sys) in
    if Timeseries.epoch_of reg now < 1 then None
    else
      let v =
        Timeseries.rate reg
          ("peer/" ^ Peer_id.to_string p ^ "/tx")
          ~now ~windows
      in
      if Float.is_finite v then Some v else None

let steered_policy ?windows ~seed sys =
  Generic.Load_steered { seed; gauge = (fun p -> load_gauge ?windows sys p) }

let doc_read_rate ~windows sys name =
  let reg = Timeseries.default in
  let now = Sim.now (System.sim sys) in
  let v = Timeseries.rate reg ("doc/" ^ name ^ "/reads") ~now ~windows in
  if Float.is_finite v then v else 0.0

let peer_serve_p95 ~windows sys p =
  let reg = Timeseries.default in
  let now = Sim.now (System.sim sys) in
  Timeseries.quantile reg
    ("peer/" ^ Peer_id.to_string p ^ "/latency_ms")
    ~now ~windows ~q:0.95

let signals_of t =
  let sys = t.sys in
  let sim = System.sim sys in
  let windows = t.cfg.windows in
  (* Union of the peers' catalogs, in (peer order, member order) —
     deterministic because both underlying orders are. *)
  let classes = ref [] in
  List.iter
    (fun (p : Peer.t) ->
      List.iter
        (fun cls ->
          let members = Generic.doc_members p.Peer.catalog ~class_name:cls in
          if members <> [] then
            match List.assoc_opt cls !classes with
            | None -> classes := !classes @ [ (cls, members) ]
            | Some known ->
                let extra =
                  List.filter
                    (fun m -> not (List.exists (Names.Doc_ref.equal m) known))
                    members
                in
                if extra <> [] then
                  classes :=
                    List.map
                      (fun (c, ms) ->
                        if String.equal c cls then (c, ms @ extra) else (c, ms))
                      !classes)
        (Generic.classes p.Peer.catalog))
    (System.peers sys);
  let busy =
    List.filter_map
      (fun m ->
        match m.m_phase with
        | Shipping -> Some m.m_class
        | Aborted when not m.m_cleaned -> Some m.m_class
        | Committed | Aborted -> None)
      t.log
  in
  {
    sig_classes = !classes;
    sig_doc_rate = (fun name -> doc_read_rate ~windows sys name);
    sig_peer_load =
      (fun p -> match load_gauge ~windows sys p with
        | Some v -> v
        | None -> infinity);
    sig_live = (fun p -> not (Sim.is_crashed sim p));
    sig_holds =
      (fun p name ->
        match Names.Doc_name.of_string_opt name with
        | None -> false
        | Some dn -> Axml_doc.Store.mem (System.peer sys p).Peer.store dn);
    sig_peers = List.map (fun (p : Peer.t) -> p.Peer.id) (System.peers sys);
    sig_busy = (fun cls -> List.exists (String.equal cls) busy);
  }

(* ---- planning (pure) ------------------------------------------ *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let plan_tick cfg rng s =
  let hot =
    List.filter_map
      (fun (cls, members) ->
        if s.sig_busy cls then None
        else if List.length members >= cfg.max_replicas then None
        else
          (* The migration source: the first member that is alive and
             actually holds the document (a registered-but-lost member
             — e.g. a crashed peer restarted without failover — cannot
             ship anything). *)
          let primary =
            List.find_map
              (fun (r : Names.Doc_ref.t) ->
                match r.Names.Doc_ref.at with
                | Names.At p
                  when s.sig_live p
                       && s.sig_holds p (Names.Doc_name.to_string r.name) ->
                    Some (p, Names.Doc_name.to_string r.name)
                | Names.At _ | Names.Any -> None)
              members
          in
          match primary with
          | None -> None
          | Some (src, doc) ->
              let rate = s.sig_doc_rate doc in
              if rate >= cfg.hot_rate then Some (cls, doc, src, rate, members)
              else None)
      s.sig_classes
  in
  let hot =
    List.sort
      (fun (c1, _, _, r1, _) (c2, _, _, r2, _) ->
        match Float.compare r2 r1 with
        | 0 -> String.compare c1 c2
        | c -> c)
      hot
  in
  let hot = take cfg.migrations_per_tick hot in
  let taken = ref [] in
  List.filter_map
    (fun (cls, doc, src, _rate, members) ->
      let member_peers =
        List.filter_map
          (fun (r : Names.Doc_ref.t) ->
            match r.Names.Doc_ref.at with
            | Names.At p -> Some p
            | Names.Any -> None)
          members
      in
      let candidates =
        List.filter
          (fun p ->
            s.sig_live p
            && (match cfg.eligible with None -> true | Some f -> f p)
            && (not (List.exists (Peer_id.equal p) member_peers))
            && (not (s.sig_holds p doc))
            && not (List.exists (Peer_id.equal p) !taken))
          s.sig_peers
      in
      match candidates with
      | [] -> None
      | _ ->
          let best =
            List.fold_left
              (fun acc p -> Float.min acc (s.sig_peer_load p))
              infinity candidates
          in
          (* [infinity] load means "no signal" for every candidate —
             the exact-tie set is then all of them and the seeded RNG
             decides, the planning-level analogue of [Load_steered]'s
             fallback. *)
          let tied =
            List.filter (fun p -> s.sig_peer_load p = best) candidates
          in
          let dst = List.nth tied (Rng.int rng (List.length tied)) in
          taken := dst :: !taken;
          Some { d_class = cls; d_doc = doc; d_src = src; d_dst = dst })
    hot

(* ---- execution ------------------------------------------------ *)

let commit t m =
  (* Guard on the phase: the target's acknowledgement can arrive
     arbitrarily late (Reliable retransmits it across a source
     outage), by which time the migration may have been aborted. *)
  if m.m_phase = Shipping then begin
    m.m_phase <- Committed;
    m.m_committed_ms <- Sim.now (System.sim t.sys);
    System.register_doc_class t.sys ~class_name:m.m_class
      (Names.Doc_ref.make (Names.Doc_name.of_string m.m_doc) (Names.At m.m_dst));
    if t.cfg.retire_source then
      (* Retire from the read class only: the source keeps the master
         copy and its forwarding link, so writes still flow through
         it to every replica. *)
      System.unregister_doc_class t.sys ~class_name:m.m_class
        (Names.Doc_ref.make (Names.Doc_name.of_string m.m_doc)
           (Names.At m.m_src))
  end

let start_migration t d =
  let sys = t.sys in
  (* A quiet lookup: the snapshot is controller bookkeeping, not query
     load — it must not feed the very signal that triggered it. *)
  match
    Axml_doc.Store.peek_by_string (System.peer sys d.d_src).Peer.store d.d_doc
  with
  | None -> ()
  | Some document -> (
      match Axml_doc.Document.root document with
      | Tree.Text _ -> ()
      | Tree.Element _ as root ->
          let m =
            {
              m_id = t.next_id;
              m_class = d.d_class;
              m_doc = d.d_doc;
              m_src = d.d_src;
              m_dst = d.d_dst;
              m_started_ms = Sim.now (System.sim sys);
              m_phase = Shipping;
              m_committed_ms = nan;
              m_cleaned = false;
            }
          in
          t.next_id <- t.next_id + 1;
          t.log <- m :: t.log;
          (* Forwarding link first, ship second — both inside this
             tick's Control event, so no append can slip between the
             snapshot and the link.  Appends applied after this
             instant are forwarded and, by FIFO, land after the
             snapshot. *)
          Peer.add_replica
            (System.peer sys d.d_src)
            (Axml_doc.Document.name document)
            d.d_dst;
          let key = System.fresh_key sys in
          System.set_cont sys key (fun _ ~final ->
              if final then commit t m);
          System.send sys ~src:d.d_src ~dst:d.d_dst
            (Message.Migrate_doc
               {
                 name = d.d_doc;
                 forest = Message.now [ root ];
                 notify = Some (d.d_src, key);
               }))

let abort_stale t now =
  List.iter
    (fun m ->
      if m.m_phase = Shipping then begin
        let src_crashed = Sim.is_crashed (System.sim t.sys) m.m_src in
        let timed_out = now -. m.m_started_ms > t.cfg.handoff_timeout_ms in
        if src_crashed || timed_out then m.m_phase <- Aborted
      end)
    t.log

(* Undo an aborted handoff once the source is live: drop the
   forwarding link and retract whatever the ship may have installed.
   The Retract travels src -> dst, so FIFO sequences it after any
   still-in-flight [Migrate_doc] on the same link — no orphan replica
   can survive it. *)
let cleanup_aborted t =
  List.iter
    (fun m ->
      if m.m_phase = Aborted && not m.m_cleaned then
        if not (Sim.is_crashed (System.sim t.sys) m.m_src) then begin
          (match Names.Doc_name.of_string_opt m.m_doc with
          | Some dn ->
              Peer.remove_replica (System.peer t.sys m.m_src) dn m.m_dst
          | None -> ());
          System.send t.sys ~src:m.m_src ~dst:m.m_dst
            (Message.Retract_doc { name = m.m_doc; notify = None });
          m.m_cleaned <- true
        end)
    t.log

let active_work t =
  List.exists
    (fun m ->
      match m.m_phase with
      | Shipping -> true
      | Aborted -> not m.m_cleaned
      | Committed -> false)
    t.log

let rec tick t =
  if not t.stopped then begin
    t.ticks <- t.ticks + 1;
    let sim = System.sim t.sys in
    let now = Sim.now sim in
    abort_stale t now;
    cleanup_aborted t;
    let reg = Timeseries.default in
    if Timeseries.is_on reg && Timeseries.epoch_of reg now >= 1 then
      List.iter (start_migration t) (plan_tick t.cfg t.rng (signals_of t));
    (* Dormancy: reschedule only while the simulation still has work
       of its own or a handoff is unfinished — an idle controller
       must not keep the run alive forever. *)
    if Sim.pending sim > 0 || active_work t then
      Sim.at sim ~time:(Sim.now sim +. t.cfg.tick_ms) (fun () -> tick t)
  end

let enable ?(cfg = default_config) sys =
  if System.transport sys <> System.Reliable then
    invalid_arg "Placement.enable: requires the Reliable transport";
  if cfg.tick_ms <= 0.0 then invalid_arg "Placement.enable: tick_ms <= 0";
  if cfg.windows <= 0 then invalid_arg "Placement.enable: windows <= 0";
  let t =
    {
      sys;
      cfg;
      rng = Rng.create ~seed:cfg.seed;
      log = [];
      next_id = 0;
      ticks = 0;
      stopped = false;
    }
  in
  let sim = System.sim sys in
  Sim.at sim ~time:(Sim.now sim +. cfg.tick_ms) (fun () -> tick t);
  t

let stop t = t.stopped <- true

let stats t =
  let count phase =
    List.length (List.filter (fun m -> m.m_phase = phase) t.log)
  in
  {
    s_ticks = t.ticks;
    s_started = List.length t.log;
    s_committed = count Committed;
    s_aborted = count Aborted;
  }

let schedule t = List.rev t.log

let schedule_fingerprint t =
  let buf = Buffer.create 128 in
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s:%s:%s->%s@%.3f:%s\n" m.m_id m.m_class m.m_doc
           (Peer_id.to_string m.m_src)
           (Peer_id.to_string m.m_dst)
           m.m_started_ms
           (match m.m_phase with
           | Shipping -> "shipping"
           | Committed -> Printf.sprintf "committed@%.3f" m.m_committed_ms
           | Aborted -> "aborted")))
    (schedule t);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp_phase fmt = function
  | Shipping -> Format.pp_print_string fmt "shipping"
  | Committed -> Format.pp_print_string fmt "committed"
  | Aborted -> Format.pp_print_string fmt "aborted"

let pp_schedule fmt t =
  List.iter
    (fun m ->
      Format.fprintf fmt "#%d %8.1fms  %s: %s  %a -> %a  %a@."
        m.m_id m.m_started_ms m.m_class m.m_doc Peer_id.pp m.m_src Peer_id.pp
        m.m_dst pp_phase m.m_phase)
    (schedule t)
