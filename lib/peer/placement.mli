(** Adaptive replica placement (DESIGN.md §17).

    A per-system controller that, on a configurable sim-clock tick,
    reads the windowed {!Axml_obs.Timeseries} load signals — per-
    document read rates, per-peer transmit load — and migrates hot
    documents onto underloaded peers live: snapshot, ship over the
    Reliable transport ({!Message.payload.Migrate_doc}, id-
    preserving), forward streaming appends that land mid-handoff, and
    register the new replica in its generic class on acknowledgement.

    Decisions are a pure function ({!plan_tick}) of a {!signals}
    snapshot plus a seeded {!Axml_net.Rng}: same-seed runs replay the
    same migration schedule byte-for-byte. *)

module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names

type config = {
  tick_ms : float;  (** Controller period (default 100). *)
  windows : int;
      (** How many complete Timeseries windows each signal reads
          (default 3). *)
  hot_rate : float;
      (** Reads/second above which a document class is a migration
          candidate (default 50). *)
  max_replicas : int;
      (** Replica budget per class, the source included (default 3). *)
  migrations_per_tick : int;  (** Handoff concurrency bound (default 1). *)
  handoff_timeout_ms : float;
      (** A ship unacknowledged for this long aborts (default 1000). *)
  retire_source : bool;
      (** Retire the source member from the {e read} class after a
          commit.  The source keeps the master copy and its
          forwarding link — writes still flow through it (default
          false). *)
  seed : int;  (** Tie-breaking RNG seed (default 1). *)
  eligible : (Peer_id.t -> bool) option;
      (** Restrict migration targets (e.g. to storage peers); [None]
          admits every peer. *)
}

val default_config : config

type phase = Shipping | Committed | Aborted

type migration = {
  m_id : int;
  m_class : string;
  m_doc : string;
  m_src : Peer_id.t;
  m_dst : Peer_id.t;
  m_started_ms : float;
  mutable m_phase : phase;
  mutable m_committed_ms : float;  (** [nan] until committed. *)
  mutable m_cleaned : bool;
      (** An aborted handoff is cleaned once its forwarding link is
          dropped and the retraction sent. *)
}

type t

val enable : ?cfg:config -> System.t -> t
(** Attach a controller to the system and schedule its first tick.
    Ticks ride the simulator's Control queue, so they observe crashes
    without being killed by them, and stop rescheduling once the
    simulation is idle and no handoff is in flight (the run can
    quiesce).
    @raise Invalid_argument unless the system uses the [Reliable]
    transport (a lost ship or acknowledgement must be retransmitted,
    not lost), or on non-positive knobs. *)

val stop : t -> unit
(** Stop scheduling ticks; in-flight handoffs are left to their
    acknowledgements. *)

(** {1 Signals and planning} *)

type signals = {
  sig_classes : (string * Names.Doc_ref.t list) list;
      (** Union of the peers' document-class catalogs, in
          deterministic (peer, registration) order. *)
  sig_doc_rate : string -> float;  (** Reads/second, recent windows. *)
  sig_peer_load : Peer_id.t -> float;
      (** Transmit load; [infinity] = no signal. *)
  sig_live : Peer_id.t -> bool;
  sig_holds : Peer_id.t -> string -> bool;
  sig_peers : Peer_id.t list;
  sig_busy : string -> bool;
      (** Class already has an unfinished handoff. *)
}

type decision = {
  d_class : string;
  d_doc : string;
  d_src : Peer_id.t;
  d_dst : Peer_id.t;
}

val plan_tick : config -> Axml_net.Rng.t -> signals -> decision list
(** One tick's migration decisions: hot classes (rate >= [hot_rate],
    under the replica budget, not busy) ranked by rate, each paired
    with the least-loaded live eligible non-holder; exact load ties
    are broken by the RNG.  Pure — exposed for direct testing. *)

(** {1 Load-steered pick policy} *)

val load_gauge : ?windows:int -> System.t -> Peer_id.t -> float option
(** The windowed per-peer transmit-load signal, [None] when there is
    no signal (telemetry disabled, no complete window yet, or a
    non-finite reading) — never NaN. *)

val steered_policy : ?windows:int -> seed:int -> System.t -> Axml_doc.Generic.policy
(** A {!Axml_doc.Generic.policy.Load_steered} fed by {!load_gauge}. *)

val doc_read_rate : windows:int -> System.t -> string -> float
val peer_serve_p95 : windows:int -> System.t -> Peer_id.t -> float
(** p95 of the peer's send-latency distribution over recent windows
    (0 with no data) — observability for [axmlctl place]. *)

(** {1 Observing} *)

type stats = {
  s_ticks : int;
  s_started : int;
  s_committed : int;
  s_aborted : int;
}

val stats : t -> stats

val schedule : t -> migration list
(** Every migration ever started, oldest first. *)

val schedule_fingerprint : t -> string
(** Digest of the full migration schedule (ids, classes, endpoints,
    start/commit times, phases) — the determinism suite's replay
    witness. *)

val pp_schedule : Format.formatter -> t -> unit
