(** Persistence of the system state Σ.

    Every piece of Σ — documents, declarative services, feed services,
    catalog knowledge — serializes to XML (this is an XML data
    management system, after all).  Extern services are opaque OCaml
    functions and cannot travel; they are recorded by name only and
    skipped on load.

    Formats one file per peer:

    {v
    <peer id="p1">
      <document name="cat">…tree…</document>
      <service name="resolve" kind="declarative" continuous="true">
        <query>query(2) …</query>
      </service>
      <service name="feed" kind="feed" doc="news"/>
      <service name="opaque" kind="extern"/>
      <class kind="doc" name="mirror"><member>cat@p2</member></class>
    </peer>
    v} *)

val peer_to_xml : System.t -> Axml_net.Peer_id.t -> string
(** Serialize one peer's state. *)

val load_peer_xml :
  System.t -> Axml_net.Peer_id.t -> string -> (unit, string) result
(** Install documents, services and catalog entries from a serialized
    peer state into the given peer (which should be empty; name
    clashes are errors). *)

val checkpoint_xml : System.t -> Axml_net.Peer_id.t -> string
(** Like {!peer_to_xml}, but each element additionally carries its
    node identity as an [axml-id] attribute.  Crash recovery needs
    identity-preserving round-trips: reply destinations captured
    before a crash hold {!Axml_doc.Names.Node_ref.t}s into the
    peer's documents, and a restored document must keep answering to
    them. *)

val restore_checkpoint :
  System.t -> Axml_net.Peer_id.t -> string -> (unit, string) result
(** Install a {!checkpoint_xml} snapshot into the (empty, freshly
    restarted) peer, rebuilding documents with their original node
    ids ([axml-id] attributes are stripped from the trees). *)

val save : System.t -> dir:string -> unit
(** Write [<peer-id>.peer.xml] files for every peer (creates [dir] if
    needed). *)

val load : System.t -> dir:string -> (int, string) result
(** Load every [*.peer.xml] in [dir] into the matching peers; returns
    the number of peers restored.  Files for peers outside the
    topology are errors. *)
