(* Per-operator query profiling.

   Operators are the nodes of a plan expression, numbered pre-order:
   the root is 0 and the subtree rooted at an operator with id [k]
   occupies the contiguous id range [k, k + size).  The numbering is
   recomputable from an operator's id plus the expression alone, so a
   delegated sub-plan shipped to another peer needs only its own id in
   the message envelope (see {!Axml_peer.Message.t}) for both sides to
   agree on every descendant's id.

   Attribution folds the span tree of one profiled run:

   - every span carries the ambient operator id stamped at record time
     ({!Axml_obs.Trace.current_op}); spans recorded outside any
     operator inherit the nearest ancestor's id;
   - {b exclusive sim time} comes from an interval sweep over the root
     ["execute"] span: each elementary interval is attributed to the
     deepest span covering it (ties broken by span id — the later,
     deeper-opened one), so the per-operator exclusive times partition
     the root interval and sum to the root's total {e by
     construction};
   - bytes and logical messages come from the ["xfer"] spans, CPU from
     the ["deliver"] spans (whose duration is the handler's
     busy-horizon growth), index hits/fallbacks from the ["index"]
     instants the compiled query engine emits.

   Estimates are {!Axml_algebra.Cost.of_expr} per operator subtree,
   with the evaluation context threaded the way {!Exec.eval} moves
   work between peers — so the report's estimate-vs-observed columns
   close the loop opened by the planner calibration (E17). *)

module Peer_id = Axml_net.Peer_id
module Expr = Axml_algebra.Expr
module Cost = Axml_algebra.Cost
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics

(* The pre-order id of child [i] of the operator [parent] whose
   children are [children]: parent + 1 + sizes of the preceding
   siblings. *)
let child_op ~parent children i =
  if parent < 0 then -1
  else
    let rec skip acc j = function
      | [] -> acc
      | c :: rest -> if j >= i then acc else skip (acc + Expr.size c) (j + 1) rest
    in
    parent + 1 + skip 0 0 children

let label expr =
  let site = function
    | Axml_doc.Names.At p -> "@" ^ Peer_id.to_string p
    | Axml_doc.Names.Any -> "@any"
  in
  match expr with
  | Expr.Data_at { at; forest } ->
      Printf.sprintf "data(%dB)@%s"
        (Axml_xml.Forest.byte_size forest)
        (Peer_id.to_string at)
  | Expr.Doc r ->
      Printf.sprintf "doc %s%s"
        (Axml_doc.Names.Doc_name.to_string r.Axml_doc.Names.Doc_ref.name)
        (site r.Axml_doc.Names.Doc_ref.at)
  | Expr.Query_app { at; args; _ } ->
      Printf.sprintf "query_app/%d@%s" (List.length args)
        (Peer_id.to_string at)
  | Expr.Sc { sc; at } ->
      Printf.sprintf "sc %s%s@%s"
        (Axml_doc.Names.Service_name.to_string sc.Axml_doc.Sc.service)
        (site sc.Axml_doc.Sc.provider)
        (Peer_id.to_string at)
  | Expr.Send { dest = Expr.To_peer p; _ } ->
      "send->" ^ Peer_id.to_string p
  | Expr.Send { dest = Expr.To_doc (name, p); _ } ->
      Printf.sprintf "send->doc %s@%s"
        (Axml_doc.Names.Doc_name.to_string name)
        (Peer_id.to_string p)
  | Expr.Send { dest = Expr.To_nodes targets; _ } ->
      Printf.sprintf "send->%d node(s)" (List.length targets)
  | Expr.Eval_at { at; _ } -> "eval@" ^ Peer_id.to_string at
  | Expr.Shared { name; at; _ } ->
      Printf.sprintf "shared %s@%s"
        (Axml_doc.Names.Doc_name.to_string name)
        (Peer_id.to_string at)

(* Pre-order (id, operator) listing with the evaluation context each
   operator runs under, threaded the way Exec moves work: a query
   application evaluates its arguments at its own site; eval\@p runs
   its body at p; everything else keeps the parent's context. *)
let operators ~ctx expr =
  let acc = ref [] in
  let rec go ~ctx k e =
    acc := (k, ctx, e) :: !acc;
    let child_ctx =
      match e with
      | Expr.Query_app { at; _ } | Expr.Eval_at { at; _ } -> at
      | _ -> ctx
    in
    let kids = Expr.subexpressions e in
    List.iteri (fun i c -> go ~ctx:child_ctx (child_op ~parent:k kids i) c) kids
  in
  go ~ctx 0 expr;
  List.rev !acc

(* --- attribution -------------------------------------------------- *)

type op_row = {
  op : int;
  op_label : string;
  est : Cost.t;
  excl_ms : float;  (** Exclusive sim time (partition of the root). *)
  cpu_ms : float;  (** Busy-horizon growth of deliveries. *)
  bytes : int;
  messages : int;
  index_hits : int;
  index_fallbacks : int;
  err_ratio : float;  (** |excl - est.latency| / max(est.latency, 1µs). *)
}

type report = {
  rows : op_row list;  (** One per plan operator, ascending id. *)
  root_ms : float;  (** Duration of the ["execute"] span. *)
  total_excl_ms : float;  (** Σ excl_ms — equals [root_ms] up to fp. *)
}

let sums_to_root r = Float.abs (r.total_excl_ms -. r.root_ms) <= 1e-6 *. Float.max 1.0 r.root_ms

type cell = {
  mutable c_excl : float;
  mutable c_cpu : float;
  mutable c_bytes : int;
  mutable c_msgs : int;
  mutable c_hits : int;
  mutable c_fallbacks : int;
}

let attribute (events : Trace.event list) ~n_ops =
  let cells =
    Array.init n_ops (fun _ ->
        { c_excl = 0.0; c_cpu = 0.0; c_bytes = 0; c_msgs = 0; c_hits = 0;
          c_fallbacks = 0 })
  in
  let cell op = cells.(max 0 (min (n_ops - 1) op)) in
  match
    List.find_opt
      (fun (e : Trace.event) ->
        e.Trace.kind = Trace.Span && e.Trace.cat = "exec"
        && e.Trace.name = "execute")
      events
  with
  | None -> (cells, 0.0)
  | Some root ->
      let r0 = root.Trace.ts_ms in
      let r1 = r0 +. Float.max 0.0 root.Trace.dur_ms in
      (* Effective operator and depth per event: recording order
         guarantees parents precede children. *)
      let effs = Hashtbl.create 256 and depths = Hashtbl.create 256 in
      let eff_of (e : Trace.event) =
        if e.Trace.op >= 0 then e.Trace.op
        else
          match e.Trace.parent with
          | None -> 0
          | Some p -> ( match Hashtbl.find_opt effs p with Some v -> v | None -> 0)
      in
      let depth_of (e : Trace.event) =
        match e.Trace.parent with
        | None -> 0
        | Some p -> (
            match Hashtbl.find_opt depths p with Some d -> d + 1 | None -> 0)
      in
      let spans = ref [] in
      List.iter
        (fun (e : Trace.event) ->
          let eff = eff_of e and depth = depth_of e in
          Hashtbl.replace effs e.Trace.id eff;
          Hashtbl.replace depths e.Trace.id depth;
          (match (e.Trace.kind, e.Trace.name) with
          | Trace.Span, "xfer" ->
              let c = cell eff in
              c.c_msgs <- c.c_msgs + 1;
              c.c_bytes <-
                c.c_bytes
                + (match List.assoc_opt "bytes" e.Trace.args with
                  | Some b -> ( try int_of_string b with _ -> 0)
                  | None -> 0)
          | Trace.Span, "deliver" ->
              (cell eff).c_cpu <- (cell eff).c_cpu +. Float.max 0.0 e.Trace.dur_ms
          | Trace.Instant, "index" ->
              let c = cell eff in
              let arg k =
                match List.assoc_opt k e.Trace.args with
                | Some v -> ( try int_of_string v with _ -> 0)
                | None -> 0
              in
              c.c_hits <- c.c_hits + arg "hits";
              c.c_fallbacks <- c.c_fallbacks + arg "fallbacks"
          | _ -> ());
          if e.Trace.kind = Trace.Span then begin
            (* Clamp to the root interval; a span never closed ends at
               the root's end. *)
            let t0 = Float.max r0 e.Trace.ts_ms in
            let t1 =
              if e.Trace.dur_ms < 0.0 then r1
              else Float.min r1 (e.Trace.ts_ms +. e.Trace.dur_ms)
            in
            if t1 > t0 then spans := (t0, t1, depth, e.Trace.id, eff) :: !spans
          end)
        events;
      let spans = Array.of_list !spans in
      (* Elementary-interval sweep: each slice of the root interval
         goes to the deepest covering span (tie: larger id).  The
         slices partition [r0, r1], so Σ excl = root duration. *)
      let bounds =
        Array.fold_left (fun acc (t0, t1, _, _, _) -> t0 :: t1 :: acc) [] spans
        |> List.filter (fun t -> t >= r0 && t <= r1)
        |> List.cons r0 |> List.cons r1 |> List.sort_uniq compare
        |> Array.of_list
      in
      for i = 0 to Array.length bounds - 2 do
        let a = bounds.(i) and b = bounds.(i + 1) in
        if b > a then begin
          let best = ref (-1) and best_key = ref (-1, -1) in
          Array.iteri
            (fun j (t0, t1, depth, id, _) ->
              if t0 <= a && t1 >= b && (depth, id) > !best_key then begin
                best := j;
                best_key := (depth, id)
              end)
            spans;
          if !best >= 0 then begin
            let _, _, _, _, eff = spans.(!best) in
            let c = cell eff in
            c.c_excl <- c.c_excl +. (b -. a)
          end
        end
      done;
      (cells, r1 -. r0)

let report ~env ~ctx ~events expr =
  let ops = operators ~ctx expr in
  let n_ops = Expr.size expr in
  let cells, root_ms = attribute events ~n_ops in
  let rows =
    List.map
      (fun (k, op_ctx, e) ->
        let est = Cost.of_expr env ~ctx:op_ctx e in
        let c = cells.(k) in
        let err_ratio =
          Float.abs (c.c_excl -. est.Cost.latency_ms)
          /. Float.max 1e-3 est.Cost.latency_ms
        in
        if Metrics.is_on Metrics.default then
          Metrics.observe Metrics.default ~subsystem:"profiler"
            "est_error_ratio" err_ratio;
        {
          op = k;
          op_label = label e;
          est;
          excl_ms = c.c_excl;
          cpu_ms = c.c_cpu;
          bytes = c.c_bytes;
          messages = c.c_msgs;
          index_hits = c.c_hits;
          index_fallbacks = c.c_fallbacks;
          err_ratio;
        })
      ops
  in
  let total_excl_ms =
    List.fold_left (fun acc r -> acc +. r.excl_ms) 0.0 rows
  in
  { rows; root_ms; total_excl_ms }

(* EXPLAIN ANALYZE-style rendering: planner estimates next to observed
   costs, one row per operator, indented by plan depth implicitly via
   operator ids (pre-order). *)
let pp_report fmt r =
  let headers =
    [ "op"; "operator"; "est.ms"; "obs.ms"; "cpu.ms"; "est.B"; "obs.B";
      "msgs"; "idx h/f"; "err" ]
  in
  let row_strings =
    List.map
      (fun row ->
        [
          string_of_int row.op;
          row.op_label;
          Printf.sprintf "%.3f" row.est.Cost.latency_ms;
          Printf.sprintf "%.3f" row.excl_ms;
          Printf.sprintf "%.3f" row.cpu_ms;
          string_of_int row.est.Cost.bytes;
          string_of_int row.bytes;
          string_of_int row.messages;
          Printf.sprintf "%d/%d" row.index_hits row.index_fallbacks;
          Printf.sprintf "%.2f" row.err_ratio;
        ])
      r.rows
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc cols -> max acc (String.length (List.nth cols i)))
          (String.length h) row_strings)
      headers
  in
  let print cols =
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        if i = 1 then Format.fprintf fmt "%-*s  " w c
        else Format.fprintf fmt "%*s  " w c)
      cols;
    Format.fprintf fmt "@."
  in
  print headers;
  print (List.map (fun w -> String.make w '-') widths);
  List.iter print row_strings;
  Format.fprintf fmt "root: %.3f ms over %d operator(s)@." r.root_ms
    (List.length r.rows);
  if sums_to_root r then
    Format.fprintf fmt "operator sim-time totals sum to root: OK (%.3f ms)@."
      r.total_excl_ms
  else
    Format.fprintf fmt
      "operator sim-time totals sum to root: MISMATCH (%.3f ms vs %.3f ms)@."
      r.total_excl_ms r.root_ms
