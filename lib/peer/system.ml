module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names
module Sim = Axml_net.Sim
module Tree = Axml_xml.Tree
module Forest = Axml_xml.Forest
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module Timeseries = Axml_obs.Timeseries

let log = Logs.Src.create "axml.system" ~doc:"AXML peer system"

module Log = (val Logs.src_log log)

type emit = Forest.t -> final:bool -> unit

type cont_entry = {
  mutable remaining_finals : int;
  mutable batches : int;
  fn : emit;
}

type transport = Raw | Reliable

(* Which wire encoding the simulator charges (and, for
   [Binary_strict], actually runs).  [Xml] is the original model:
   bytes = XML serialization size plus a fixed envelope.  [Binary]
   charges the exact encoded frame length computed by {!Codec} without
   materializing frames.  [Binary_strict] additionally encodes and
   lazily re-decodes every physical transmission, so the whole stack
   (transport, chaos plans, dispatch) exercises the codec end to
   end. *)
type wire = Xml | Binary | Binary_strict

(* Reliable-transport state. Sequence cursors ([next_seq],
   [next_expected]) model WAL-backed durable state: they survive a
   crash, so a restarted peer neither reuses sequence numbers (which
   would be mistaken for duplicates) nor re-accepts old ones.  The
   in-flight tables ([pending] at the sender, [buffer] at the
   receiver) are volatile and wiped by a crash — the protocol is
   designed so that is safe: a buffered message is never acked, so
   losing the buffer just means the sender retransmits. *)
type pending_send = {
  msg : Message.t;
  mutable attempt : int;
  mutable cancel_retry : unit -> unit;
      (* Cancels the scheduled retransmission timer; invoked when the
         ack lands (or the sender crashes) so the dead timer cannot
         stretch the run's completion time. *)
}

(* One connection record per ordered peer pair (a, b), bundling every
   role [a] plays in its conversation with [b]: the durable sequence
   cursors, the sender-side in-flight state for a→b traffic (per-seq
   [pending] sends or the batching window), and the receiver-side
   state for b→a traffic (the early-arrival [buffer] and the delayed
   standalone ack).  This replaces five tuple-keyed hashtables whose
   per-message key allocation and generic tuple hashing dominated the
   transport at 10^6 messages: now each message does one int-keyed
   probe (packed dense peer indexes) to reach all of its state.

   Durability: [next_seq] / [next_expected] model WAL-backed cursors
   and survive a crash of [a]; everything else in the record is
   volatile and reset by {!handle_crash}.  The record itself is
   created on first contact and never removed. *)
type conn = {
  c_src : Peer_id.t;  (* a *)
  c_dst : Peer_id.t;  (* b *)
  mutable next_seq : int;  (* last seq assigned to a→b traffic *)
  mutable next_expected : int;  (* next in-order seq awaited from b *)
  pending : (int, pending_send) Hashtbl.t;  (* seq -> unbatched in-flight *)
  mutable queue : Message.t list;  (* awaiting flush, newest first *)
  mutable flush_pending : bool;
  mutable unacked : Message.t list;  (* sent, ascending seq *)
  mutable attempt : int;
  mutable cancel_retry : unit -> unit;
  buffer : (int, Message.t) Hashtbl.t;  (* seq -> early arrival from b *)
  mutable ack_due : bool;  (* a standalone ack timer is armed *)
  mutable cancel_ack : unit -> unit;
  mutable ts_inflight : Timeseries.handle option;
      (* Lazily-bound [net/link/a->b/inflight] series (see
         {!Axml_obs.Timeseries}); [None] until the first send with
         telemetry enabled. *)
}

type rel = {
  conns : (int, conn) Hashtbl.t;  (* packed (a, b) dense-index pair *)
  mutable retransmits : int;
  mutable dup_suppressed : int;
  mutable abandoned : int;
  mutable acks_sent : int;
  mutable batches_sent : int;
  mutable batched_messages : int;
  mutable piggybacked_acks : int;
  mutable delayed_acks : int;
  mutable dedup_shared_bytes : int;
}

(* Pre-resolved per-peer metric handles for the routing/stream hot
   path — a keyed [Metrics.incr] allocates a key tuple and hashes
   three strings per call, which showed up at the E21 1000-peer tier. *)
type peer_metrics = {
  m_routed : Metrics.counter_handle;
  m_stream_batches : Metrics.hist_handle;
}

type t = {
  sim : Message.t Sim.t;
  mutable peers : Peer.t option array;  (* indexed by dense Peer_id.index *)
  mutable pmetrics : peer_metrics option array;  (* same index *)
  conts : (int, cont_entry) Hashtbl.t;
  mutable next_key : int;
  response_delay_ms : float;
  cpu_ms_per_kb : float;
  transport : transport;
  wire : wire;
  rto_ms : float;
  max_retries : int;
  flush_ms : float;
  ack_delay_ms : float;
  rel : rel;
  mutable failover_save : Peer_id.t -> unit;
  mutable failover_load : Peer_id.t -> unit;
  mutable qcache_capacity : int option;
      (* [Some cap] = semantic caching enabled; every live peer (and
         every peer recreated by a crash) carries a fresh
         [Peer.qcache] of this capacity. *)
}

type eval_hook = t -> ctx:Peer_id.t -> Axml_algebra.Expr.t -> emit:emit -> unit

let eval_hook : eval_hook ref =
  ref (fun _ ~ctx:_ _ ~emit:_ ->
      failwith
        "System: no expression evaluator installed (Axml_peer.Exec not \
         linked?)")

let set_eval_hook f = eval_hook := f
let sim t = t.sim
let response_delay_ms t = t.response_delay_ms
let cpu_ms_per_kb t = t.cpu_ms_per_kb
let transport t = t.transport
let wire t = t.wire
let flush_ms t = t.flush_ms
let ack_delay_ms t = t.ack_delay_ms

type reliability_counters = {
  retransmits : int;
  dup_suppressed : int;
  abandoned : int;
  acks_sent : int;
  batches_sent : int;
  batched_messages : int;
  piggybacked_acks : int;
  delayed_acks : int;
  dedup_shared_bytes : int;
}

let reliability_counters t =
  {
    retransmits = t.rel.retransmits;
    dup_suppressed = t.rel.dup_suppressed;
    abandoned = t.rel.abandoned;
    acks_sent = t.rel.acks_sent;
    batches_sent = t.rel.batches_sent;
    batched_messages = t.rel.batched_messages;
    piggybacked_acks = t.rel.piggybacked_acks;
    delayed_acks = t.rel.delayed_acks;
    dedup_shared_bytes = t.rel.dedup_shared_bytes;
  }

(* Dense per-peer slots: the per-dispatch peer lookup is an array load
   instead of a string hash + probe. *)
let peer_slot t p =
  let i = Peer_id.index p in
  if i < Array.length t.peers then t.peers.(i) else None

let peer t p =
  match peer_slot t p with Some peer -> peer | None -> raise Not_found

let peer_metrics t p =
  let i = Peer_id.index p in
  if i >= Array.length t.pmetrics then begin
    let arr = Array.make (max (i + 1) (2 * Array.length t.pmetrics)) None in
    Array.blit t.pmetrics 0 arr 0 (Array.length t.pmetrics);
    t.pmetrics <- arr
  end;
  match t.pmetrics.(i) with
  | Some h -> h
  | None ->
      let peer = Peer_id.to_string p in
      let h =
        {
          m_routed =
            Metrics.counter_handle Metrics.default ~peer ~subsystem:"peer"
              "routed_batches";
          m_stream_batches =
            Metrics.hist_handle Metrics.default ~peer ~subsystem:"stream"
              "batches";
        }
      in
      t.pmetrics.(i) <- Some h;
      h

let set_peer t p v =
  let i = Peer_id.index p in
  if i >= Array.length t.peers then begin
    let arr = Array.make (max (i + 1) (2 * Array.length t.peers)) None in
    Array.blit t.peers 0 arr 0 (Array.length t.peers);
    t.peers <- arr
  end;
  t.peers.(i) <- Some v

let peers t =
  Axml_net.Topology.peers (Sim.topology t.sim) |> List.map (peer t)

let gen_of t p = (peer t p).Peer.gen

(* Semantic result cache (DESIGN.md §18).  Attaching gives the peer a
   fresh empty cache and wires the store's mutation hook to eager
   invalidation of entries pinned to the peer's own documents;
   cross-peer dependencies are revalidated lazily at probe time
   against live version stamps (same live-read convention as
   [cost_env]: versions model the invalidation protocol's knowledge,
   not shipped state). *)
let attach_qcache t p =
  match t.qcache_capacity with
  | None -> ()
  | Some capacity ->
      let pr = peer t p in
      let owner = Peer_id.to_string p in
      pr.Peer.qcache <-
        Some
          (Axml_query.Qcache.create ~capacity ~owner
             ~equal:Axml_algebra.Expr.equal ());
      Axml_doc.Store.set_on_mutate pr.Peer.store (fun name ->
          match pr.Peer.qcache with
          | Some c ->
              Axml_query.Qcache.invalidate_dep c ~peer:owner
                ~doc:(Names.Doc_name.to_string name)
          | None -> ())

let enable_qcache ?(capacity = 256) t =
  t.qcache_capacity <- Some capacity;
  List.iter (fun (pr : Peer.t) -> attach_qcache t pr.Peer.id) (peers t)

let qcache_enabled t = t.qcache_capacity <> None

let doc_version t ~peer:p ~doc =
  match peer_slot t p with
  | None -> None
  | Some pr -> (
      match Names.Doc_name.of_string_opt doc with
      | None -> None
      | Some n -> Axml_doc.Store.version_of pr.Peer.store n)

let qcache_stats t =
  List.fold_left
    (fun acc (pr : Peer.t) ->
      match pr.Peer.qcache with
      | Some c -> Axml_query.Qcache.add_stats acc (Axml_query.Qcache.stats c)
      | None -> acc)
    Axml_query.Qcache.zero_stats (peers t)

let fresh_key t =
  let k = t.next_key in
  t.next_key <- t.next_key + 1;
  k

let set_cont ?(expected_finals = 1) t key f =
  Hashtbl.replace t.conts key
    { remaining_finals = expected_finals; batches = 0; fn = f }

let note_of t payload =
  (* Rendering the note costs; only pay when someone listens.
     (Per-peer net metrics live in Sim.send, next to Stats, so they
     mirror each actual transmission — including retransmissions and
     fault-injected duplicates.) *)
  if Axml_net.Stats.tracing_enabled (Sim.stats t.sim) then
    Some (Format.asprintf "%a" Message.pp payload)
  else None

let raw_send t ~src ~dst (msg : Message.t) =
  (* The charged size is the wire's: the XML model walks the payload
     (memoized per tree), the binary wire reads cached encoded-frame
     lengths.  Strict mode then replaces the in-flight message with
     its encode→lazy-decode round trip, so the receiver works off the
     frame exactly as a real network peer would — forests decode on
     first touch, and transport-layer handling decodes nothing. *)
  let bytes =
    match t.wire with
    | Xml -> Message.bytes msg.Message.payload
    | Binary | Binary_strict -> Codec.frame_bytes msg
  in
  let msg =
    match t.wire with
    | Xml | Binary -> msg
    | Binary_strict -> Codec.roundtrip msg
  in
  Sim.send
    ?note:(note_of t msg.Message.payload)
    ~msgs:(Message.batch_size msg.Message.payload)
    t.sim ~src ~dst ~bytes msg

(* Exponential backoff, capped: attempt 0 waits rto, attempt n waits
   min(rto * 2^n, rto * 32). *)
let retry_delay t attempt = t.rto_ms *. (2.0 ** float_of_int (min attempt 5))

let conn_key a b = (Peer_id.index a lsl 31) lor Peer_id.index b

let conn t a b =
  let key = conn_key a b in
  match Hashtbl.find t.rel.conns key with
  | c -> c
  | exception Not_found ->
      let c =
        {
          c_src = a;
          c_dst = b;
          next_seq = 0;
          next_expected = 1;
          pending = Hashtbl.create 8;
          queue = [];
          flush_pending = false;
          unacked = [];
          attempt = 0;
          cancel_retry = ignore;
          buffer = Hashtbl.create 8;
          ack_due = false;
          cancel_ack = ignore;
          ts_inflight = None;
        }
      in
      Hashtbl.add t.rel.conns key c;
      c

(* Lookup that must not create: used where the old tables answered
   [None] for a pair that never communicated. *)
let conn_opt t a b =
  match Hashtbl.find t.rel.conns (conn_key a b) with
  | c -> Some c
  | exception Not_found -> None

(* One physical transmission of a sequenced message plus the timer
   that guards it.  The timer outlives acks on purpose: when it fires
   it checks whether the send is still pending and retransmits with
   backoff, giving up (and counting the abandonment) after
   [max_retries] so a permanently dead destination cannot keep the
   simulation alive forever.  The connection record is captured by the
   timer closure — records are never replaced, so the capture cannot
   go stale. *)
let rec transmit t (c : conn) ~src ~dst (msg : Message.t) =
  raw_send t ~src ~dst msg;
  match Hashtbl.find_opt c.pending msg.Message.seq with
  | None -> ()
  | Some p ->
      p.cancel_retry <-
        Sim.after_cancellable t.sim ~peer:src
          ~delay_ms:(retry_delay t p.attempt) (fun () ->
            retry t c ~src ~dst msg)

and retry t (c : conn) ~src ~dst (msg : Message.t) =
  let seq = msg.Message.seq in
  match Hashtbl.find_opt c.pending seq with
  | None -> () (* acked in the meantime *)
  | Some p when p.attempt >= t.max_retries ->
      Hashtbl.remove c.pending seq;
      t.rel.abandoned <- t.rel.abandoned + 1;
      if Metrics.is_on Metrics.default then
        Metrics.incr Metrics.default ~peer:(Peer_id.to_string src)
          ~subsystem:"net" "abandoned";
      (* SLO breach: reliable delivery gave up on this message. *)
      if Trace.sampled () then
        Trace.instant ~cat:"slo"
          ~peer:(Peer_id.to_string src)
          ~ts:(Sim.now t.sim)
          ~args:
            [ ("dst", Peer_id.to_string dst); ("seq", string_of_int seq);
              ("count", "1") ]
          "abandoned";
      Log.warn (fun m ->
          m "peer %a: abandoning seq %d to %a after %d retries" Peer_id.pp src
            seq Peer_id.pp dst t.max_retries)
  | Some p ->
      p.attempt <- p.attempt + 1;
      t.rel.retransmits <- t.rel.retransmits + 1;
      if Metrics.is_on Metrics.default then
        Metrics.incr Metrics.default ~peer:(Peer_id.to_string src)
          ~subsystem:"net" "retransmits";
      transmit t c ~src ~dst msg

(* --- batched reliable transport (sender side) -------------------- *)

(* Batching is an opt-in layer over the Reliable transport: with a
   positive [flush_ms] (a Nagle-style coalescing window) and/or
   [ack_delay_ms] (delayed standalone acks), sequenced messages to the
   same destination ride one [Message.Batch] frame carrying a
   piggybacked cumulative ack of the reverse direction.  With both
   knobs at 0 — the default — the per-message path above runs
   unchanged, byte for byte. *)
let batched t =
  t.transport = Reliable && (t.flush_ms > 0.0 || t.ack_delay_ms > 0.0)

(* Highest sequence number [c.c_src] has delivered from [c.c_dst] —
   what a cumulative ack acknowledges ([0] = nothing yet). *)
let cum_ack (c : conn) = c.next_expected - 1

(* Ship one frame.  A regular flush carries only the window's fresh
   messages; a retransmission timeout re-ships the whole unacked
   window (go-back-N on loss only — re-shipping on every flush would
   go quadratic when the flush window is shorter than the RTT).  One
   retry timer per direction guards the window, replacing the
   per-message timers of the unbatched path. *)
let rec send_batch t ~src ~dst (d : conn) msgs =
  if d.ack_due then begin
    (* The pending standalone ack is subsumed by this frame's
       piggybacked cumulative ack. *)
    d.cancel_ack ();
    d.ack_due <- false;
    t.rel.piggybacked_acks <- t.rel.piggybacked_acks + 1;
    if Metrics.is_on Metrics.default then
      Metrics.incr Metrics.default ~peer:(Peer_id.to_string src)
        ~subsystem:"net" "piggybacked_acks"
  end;
  let payload = Message.batch ~ack:(cum_ack d) msgs in
  let items = Message.batch_size payload in
  let saved = Message.batch_saved payload in
  t.rel.batches_sent <- t.rel.batches_sent + 1;
  t.rel.batched_messages <- t.rel.batched_messages + items;
  t.rel.dedup_shared_bytes <- t.rel.dedup_shared_bytes + saved;
  if Metrics.is_on Metrics.default then begin
    let peer = Peer_id.to_string src in
    Metrics.incr Metrics.default ~peer ~subsystem:"net" "batches_sent";
    Metrics.incr Metrics.default ~peer ~by:items ~subsystem:"net" "batch_items";
    if saved > 0 then
      Metrics.incr Metrics.default ~peer ~by:saved ~subsystem:"net"
        "batch_shared_bytes"
  end;
  if Trace.sampled () then
    Trace.instant ~cat:"net"
      ~peer:(Peer_id.to_string src)
      ~ts:(Sim.now t.sim)
      ~args:
        [
          ("dst", Peer_id.to_string dst);
          ("items", string_of_int items);
          ("ack", string_of_int (cum_ack d));
          ("shared_bytes", string_of_int saved);
        ]
      "batch";
  raw_send t ~src ~dst (Message.make payload);
  d.cancel_retry ();
  d.cancel_retry <-
    Sim.after_cancellable t.sim ~peer:src ~delay_ms:(retry_delay t d.attempt)
      (fun () -> retry_batch t d ~src ~dst)

and retry_batch t (d : conn) ~src ~dst =
  match d with
  | d when d.unacked = [] -> ()
  | d when d.attempt >= t.max_retries ->
      let n = List.length d.unacked in
      d.unacked <- [];
      d.attempt <- 0;
      t.rel.abandoned <- t.rel.abandoned + n;
      if Metrics.is_on Metrics.default then
        Metrics.incr Metrics.default ~peer:(Peer_id.to_string src) ~by:n
          ~subsystem:"net" "abandoned";
      (* SLO breach: the whole unacked window was given up on. *)
      if Trace.sampled () then
        Trace.instant ~cat:"slo"
          ~peer:(Peer_id.to_string src)
          ~ts:(Sim.now t.sim)
          ~args:
            [ ("dst", Peer_id.to_string dst); ("count", string_of_int n) ]
          "abandoned";
      Log.warn (fun m ->
          m "peer %a: abandoning %d batched message(s) to %a after %d retries"
            Peer_id.pp src n Peer_id.pp dst t.max_retries)
  | d ->
      d.attempt <- d.attempt + 1;
      t.rel.retransmits <- t.rel.retransmits + 1;
      if Metrics.is_on Metrics.default then
        Metrics.incr Metrics.default ~peer:(Peer_id.to_string src)
          ~subsystem:"net" "retransmits";
      send_batch t ~src ~dst d d.unacked

let flush_conn t ~src ~dst (d : conn) =
  d.flush_pending <- false;
  match List.rev d.queue with
  | [] -> ()  (* stale timer, e.g. surviving a crash+restart *)
  | fresh ->
      d.queue <- [];
      d.unacked <- d.unacked @ fresh;
      send_batch t ~src ~dst d fresh

(* Everything up to [upto] is delivered at the far side.  Progress
   resets the backoff; an emptied window parks the retry timer. *)
let handle_cum_ack t ~at ~from upto =
  match conn_opt t at from with
  | None -> ()
  | Some d ->
      let before = List.length d.unacked in
      d.unacked <-
        List.filter (fun (m : Message.t) -> m.Message.seq > upto) d.unacked;
      if List.length d.unacked < before then begin
        d.attempt <- 0;
        if d.unacked = [] then begin
          d.cancel_retry ();
          d.cancel_retry <- ignore
        end
      end

(* Sender-side congestion telemetry: how many sequenced messages to
   [c.c_dst] are in flight (unacked window plus the unflushed queue)
   the moment a new send joins them — the signal a placement
   controller would watch for a saturating link. *)
let note_inflight (c : conn) =
  let h =
    match c.ts_inflight with
    | Some h -> h
    | None ->
        let h =
          Timeseries.handle Timeseries.default
            ("net/link/" ^ Peer_id.to_string c.c_src ^ "->"
           ^ Peer_id.to_string c.c_dst ^ "/inflight")
        in
        c.ts_inflight <- Some h;
        h
  in
  (* [+ 1] counts the joining message itself: a quiet link reads 1,
     a saturating one reads its whole outstanding window. *)
  Timeseries.record h
    (float_of_int
       (1 + Hashtbl.length c.pending + List.length c.unacked
      + List.length c.queue))

let send t ~src ~dst payload =
  let corr = Trace.current_corr () in
  let op = Trace.current_op () in
  let sequenced =
    match (t.transport, payload) with
    | Raw, _ -> false
    | Reliable, Message.Ack _ -> false
    | Reliable, _ -> not (Peer_id.equal src dst)
    (* Loopback delivery cannot be lost; acks are themselves the
       protocol's feedback and must stay unsequenced or every ack
       would need an ack. *)
  in
  if not sequenced then raw_send t ~src ~dst (Message.make ~corr ~op payload)
  else begin
    let c = conn t src dst in
    let seq = c.next_seq + 1 in
    c.next_seq <- seq;
    let msg = Message.make ~corr ~seq ~op payload in
    if Timeseries.is_on Timeseries.default then note_inflight c;
    if batched t then begin
      c.queue <- msg :: c.queue;
      if not c.flush_pending then begin
        c.flush_pending <- true;
        (* [flush_ms = 0] still coalesces: the timer fires after every
           send already scheduled at this instant. *)
        Sim.after t.sim ~peer:src ~delay_ms:t.flush_ms (fun () ->
            flush_conn t ~src ~dst c)
      end
    end
    else begin
      Hashtbl.replace c.pending seq { msg; attempt = 0; cancel_retry = ignore };
      transmit t c ~src ~dst msg
    end
  end

let send_ack t ~src ~dst ~corr seq =
  t.rel.acks_sent <- t.rel.acks_sent + 1;
  raw_send t ~src ~dst (Message.make ~corr (Message.Ack { seq }))

(* --- batched reliable transport (receiver side, ack scheduling) --- *)

let fire_delayed_ack t ~at ~from (d : conn) =
  if d.ack_due then begin
    d.ack_due <- false;
    t.rel.delayed_acks <- t.rel.delayed_acks + 1;
    if Metrics.is_on Metrics.default then
      Metrics.incr Metrics.default ~peer:(Peer_id.to_string at)
        ~subsystem:"net" "delayed_acks";
    send_ack t ~src:at ~dst:from ~corr:0 (cum_ack d)
  end

(* Owe the sender an acknowledgement.  With no delay configured a
   standalone cumulative ack leaves immediately; otherwise a single
   timer is armed (re-arming would starve the sender under a steady
   stream) and cancelled if reverse traffic piggybacks first. *)
let schedule_ack t ~at ~from (d : conn) =
  if t.ack_delay_ms <= 0.0 then
    send_ack t ~src:at ~dst:from ~corr:0 (cum_ack d)
  else if not d.ack_due then begin
    d.ack_due <- true;
    d.cancel_ack <-
      Sim.after_cancellable t.sim ~peer:at ~delay_ms:t.ack_delay_ms (fun () ->
          fire_delayed_ack t ~at ~from d)
  end

let consume_cpu t ~peer ~bytes =
  Sim.consume_cpu t.sim ~peer
    ~ms:(t.cpu_ms_per_kb *. (float_of_int bytes /. 1024.0))

let route ?notify t ~src dest forest ~final =
  (* [notify] rides on the message so the acknowledgement fires at the
     destination, after the side effect — a bare ack message would
     overtake the (larger, slower) data it acknowledges. *)
  if Metrics.is_on Metrics.default then
    Metrics.incr_h (peer_metrics t src).m_routed ~by:1;
  if Trace.sampled () then
    Trace.instant ~cat:"peer"
      ~peer:(Peer_id.to_string src)
      ~ts:(Sim.now t.sim)
      ~args:
        [
          ( "dest",
            match dest with
            | Message.Cont { peer; key } ->
                Printf.sprintf "cont[%d]@%s" key (Peer_id.to_string peer)
            | Message.Node r ->
                "node@" ^ Peer_id.to_string r.Names.Node_ref.peer
            | Message.Install { peer; name } ->
                Printf.sprintf "install %s@%s" name (Peer_id.to_string peer) );
          ("bytes", string_of_int (Forest.byte_size_cached forest));
          ("final", string_of_bool final);
        ]
      "route";
  let notify = if final then notify else None in
  match dest with
  | Message.Cont { peer; key } ->
      if forest <> [] || final then
        send t ~src ~dst:peer
          (Message.Stream { key; forest = Message.now forest; final })
  | Message.Node r ->
      if forest <> [] || notify <> None then
        send t ~src ~dst:r.Names.Node_ref.peer
          (Message.Insert
             {
               node = r.Names.Node_ref.node;
               forest = Message.now forest;
               notify;
             })
  | Message.Install { peer; name } ->
      if forest <> [] || notify <> None then
        send t ~src ~dst:peer
          (Message.Install_doc { name; forest = Message.now forest; notify })

(* Notify doc-feed watchers that a document has grown. *)
let notify_watchers t self doc_name forest =
  List.iter
    (fun dest -> route t ~src:self.Peer.id dest forest ~final:false)
    (Peer.watchers_of self doc_name)

let run_service t (self : Peer.t) service params replies =
  let respond forest ~final =
    List.iter (fun dest -> route t ~src:self.Peer.id dest forest ~final) replies
  in
  match Axml_doc.Registry.find self.Peer.registry service with
  | None ->
      Log.warn (fun m ->
          m "peer %a: invoke of unknown service %a" Peer_id.pp self.Peer.id
            Names.Service_name.pp service);
      respond [] ~final:true
  | Some svc -> (
      match Axml_doc.Service.impl svc with
      | Axml_doc.Service.Declarative q ->
          let input_bytes =
            List.fold_left
              (fun acc f -> acc + Forest.byte_size_cached f)
              0 params
          in
          consume_cpu t ~peer:self.Peer.id ~bytes:input_bytes;
          let out =
            try Axml_query.Compile.eval ~gen:self.Peer.gen q params
            with Invalid_argument msg ->
              Log.err (fun m ->
                  m "peer %a: service %a failed: %s" Peer_id.pp self.Peer.id
                    Names.Service_name.pp service msg);
              []
          in
          respond out ~final:true
      | Axml_doc.Service.Extern f ->
          let out =
            try f params
            with exn ->
              Log.err (fun m ->
                  m "peer %a: extern service %a raised %s" Peer_id.pp
                    self.Peer.id Names.Service_name.pp service
                    (Printexc.to_string exn));
              []
          in
          (* A continuous service sends its responses successively
             (Section 2.1); space them by the configured delay. *)
          if Axml_doc.Service.continuous svc && List.length out > 1 then
            List.iteri
              (fun i tree ->
                let final = i = List.length out - 1 in
                Sim.after t.sim ~peer:self.Peer.id
                  ~delay_ms:(t.response_delay_ms *. float_of_int i)
                  (fun () -> respond [ tree ] ~final))
              out
          else respond out ~final:true
      | Axml_doc.Service.Doc_feed doc_name ->
          let current =
            match Axml_doc.Store.find self.Peer.store doc_name with
            | Some doc ->
                List.map
                  (Tree.copy ~gen:self.Peer.gen)
                  (Tree.children (Axml_doc.Document.root doc))
            | None -> []
          in
          (* Initial batch now; future inserts via the watcher list.
             A feed never terminates — no final batch. *)
          respond current ~final:false;
          List.iter (fun dest -> Peer.watch self doc_name dest) replies)

let ping t (self : Peer.t) = function
  | None -> ()
  | Some (peer, key) ->
      send t ~src:self.Peer.id ~dst:peer
        (Message.Stream { key; forest = Message.now []; final = true })

(* Placement forwarding (DESIGN.md §17): an append applied to a
   document with registered replica links is re-shipped verbatim to
   each target.  Replicas preserve node ids, so the same [Insert]
   lands under the same node there; targets hold no links of their
   own (the controller never replicates onto a holder), so
   forwarding cannot loop. *)
let forward_to_replicas t (self : Peer.t) name ~node forest =
  match Peer.replica_targets self name with
  | [] -> ()
  | targets ->
      List.iter
        (fun dst ->
          send t ~src:self.Peer.id ~dst
            (Message.Insert
               { node; forest = Message.now forest; notify = None }))
        targets

let handle_insert t (self : Peer.t) node forest notify =
  (match Peer.find_doc_with_node self node with
  | None ->
      Log.warn (fun m ->
          m "peer %a: insert target node %a not found" Peer_id.pp self.Peer.id
            Axml_xml.Node_id.pp node)
  | Some doc -> (
      let name = Axml_doc.Document.name doc in
      (* Store-level insert: keeps the document's structural index
         maintained incrementally instead of invalidating it. *)
      match Axml_doc.Store.insert_under self.Peer.store name ~node forest with
      | None -> ()
      | Some _ ->
          notify_watchers t self name forest;
          forward_to_replicas t self name ~node forest));
  ping t self notify

let handle_install t (self : Peer.t) name forest notify =
  (match Axml_doc.Store.find_by_string self.Peer.store name with
  | Some doc ->
      (* Subsequent batches of the same stream accumulate under the
         existing root. *)
      let root = Axml_doc.Document.root doc in
      (match Tree.id root with
      | Some node -> (
          match
            Axml_doc.Store.insert_under self.Peer.store
              (Axml_doc.Document.name doc) ~node forest
          with
          | Some _ ->
              notify_watchers t self (Axml_doc.Document.name doc) forest;
              forward_to_replicas t self (Axml_doc.Document.name doc) ~node
                forest
          | None -> ())
      | None -> ())
  | None ->
      let root =
        match forest with
        | [ (Tree.Element _ as tree) ] -> tree
        | forest ->
            Tree.element ~gen:self.Peer.gen
              (Axml_xml.Label.of_string "doc")
              forest
      in
      ignore (Axml_doc.Store.install self.Peer.store ~name root));
  ping t self notify

(* Placement handoff (DESIGN.md §17): install-or-replace a replica
   under exactly the shipped name and node ids.  Unlike
   [handle_install] the name is never uniquified and an existing
   document is {e replaced}, so a re-shipped migration (restart
   resync, duplicate delivery under Raw) is idempotent.  The
   acknowledgement pings only on success — a malformed ship times out
   at the controller and the migration aborts. *)
let handle_migrate t (self : Peer.t) name forest notify =
  match forest with
  | [ (Tree.Element _ as root) ] ->
      (match Axml_doc.Store.peek_by_string self.Peer.store name with
      | Some doc ->
          ignore
            (Axml_doc.Store.update_root self.Peer.store
               (Axml_doc.Document.name doc)
               (fun _ -> root))
      | None ->
          Axml_doc.Store.add self.Peer.store (Axml_doc.Document.make ~name root));
      ping t self notify
  | _ ->
      Log.warn (fun m ->
          m "peer %a: malformed migrate of %s (not a single element)"
            Peer_id.pp self.Peer.id name)

let handle_retract t (self : Peer.t) name notify =
  (match Axml_doc.Store.peek_by_string self.Peer.store name with
  | Some doc -> Axml_doc.Store.remove self.Peer.store (Axml_doc.Document.name doc)
  | None -> ());
  ping t self notify

let dispatch_payload t (self : Peer.t) ~src payload =
  ignore src;
  match payload with
  | Message.Stream { key; forest; final } -> (
      match Hashtbl.find_opt t.conts key with
      | None ->
          Log.debug (fun m ->
              m "peer %a: stream for dead continuation %d" Peer_id.pp
                self.Peer.id key)
      | Some entry ->
          (* First (and only) touch of a lazily-decoded forest: the
             application is about to consume it. *)
          let forest = Message.force forest in
          entry.batches <- entry.batches + 1;
          if final then begin
            entry.remaining_finals <- entry.remaining_finals - 1;
            if entry.remaining_finals <= 0 then begin
              Hashtbl.remove t.conts key;
              if Metrics.is_on Metrics.default then
                Metrics.observe_h
                  (peer_metrics t self.Peer.id).m_stream_batches
                  (float_of_int entry.batches)
            end
          end;
          (* The consumer sees the stream close only when every
             expected source has finished. *)
          entry.fn forest ~final:(final && entry.remaining_finals <= 0))
  | Message.Eval_request { expr; replies; ack } ->
      let is_side_effecting = function
        | Message.Cont _ -> false
        | Message.Node _ | Message.Install _ -> true
      in
      let side_dests = List.filter is_side_effecting replies in
      let finished = ref false in
      let emit forest ~final =
        if not !finished then begin
          List.iter
            (fun dest ->
              let notify = if is_side_effecting dest then ack else None in
              route ?notify t ~src:self.Peer.id dest forest ~final)
            replies;
          if final then begin
            finished := true;
            (* With no side-effecting destination the ack fires
               directly; otherwise the destinations acknowledge after
               applying the final batch. *)
            match ack with
            | Some (peer, key) when side_dests = [] ->
                send t ~src:self.Peer.id ~dst:peer
                  (Message.Stream
                     { key; forest = Message.now []; final = true })
            | Some _ | None -> ()
          end
        end
      in
      !eval_hook t ~ctx:self.Peer.id expr ~emit
  | Message.Invoke { service; params; replies } ->
      run_service t self service (List.map Message.force params) replies
  | Message.Insert { node; forest; notify } ->
      handle_insert t self node (Message.force forest) notify
  | Message.Install_doc { name; forest; notify } ->
      handle_install t self name (Message.force forest) notify
  | Message.Migrate_doc { name; forest; notify } ->
      handle_migrate t self name (Message.force forest) notify
  | Message.Retract_doc { name; notify } -> handle_retract t self name notify
  | Message.Deploy { prefix; query; reply } ->
      let name =
        Axml_doc.Registry.install_query self.Peer.registry ~prefix query
      in
      route t ~src:self.Peer.id reply
        [ Tree.text (Names.Service_name.to_string name) ]
        ~final:true
  | Message.Query_shipped { key; query = _ } -> (
      match Hashtbl.find_opt t.conts key with
      | None -> ()
      | Some entry ->
          Hashtbl.remove t.conts key;
          entry.fn [] ~final:true)
  | Message.Ack _ | Message.Batch _ ->
      (* Consumed by the transport layer (on_message) before dispatch:
         a batch frame is unpacked into its items there. *)
      ()

(* Delivery entry point: re-establish the sender's correlation id (and
   the profiler's operator id) as the ambient ones, so spans recorded
   here — and any messages sent from here — stay attached to the
   logical computation that caused this delivery, across any number of
   hops.  Written closure-free (swap/restore rather than
   with_corr/Fun.protect) because this is the per-message hot path:
   with tracing enabled but this correlation sampled out, the whole
   prelude is two ref swaps and a cached boolean — no span arguments
   are ever built. *)
let dispatch t (self : Peer.t) ~src (msg : Message.t) =
  if not (Trace.enabled ()) then
    dispatch_payload t self ~src msg.Message.payload
  else begin
    let corr0 = Trace.swap_corr msg.Message.corr in
    let op0 = Trace.swap_op msg.Message.op in
    let sid =
      if Trace.sampled () then
        Trace.begin_span ~cat:"peer"
          ~peer:(Peer_id.to_string self.Peer.id)
          ~ts:(Sim.now t.sim)
          ~args:[ ("src", Peer_id.to_string src) ]
          ("handle " ^ Message.tag msg.Message.payload)
      else Trace.null
    in
    let finish () =
      Trace.end_span sid
        ~ts:(max (Sim.now t.sim) (Sim.busy_until t.sim self.Peer.id));
      Trace.restore_op op0;
      Trace.restore_corr corr0
    in
    match dispatch_payload t self ~src msg.Message.payload with
    | () -> finish ()
    | exception e ->
        finish ();
        raise e
  end

(* Receiver-side transport stage, run before dispatch.  Sequenced
   messages are delivered to the application exactly once and in send
   order: early arrivals wait in a (volatile) buffer, duplicates are
   suppressed, and an ack is emitted only when a message is actually
   delivered — never for a merely buffered one, so a crash that wipes
   the buffer cannot lose anything the sender believes delivered. *)
let count_dup t p =
  t.rel.dup_suppressed <- t.rel.dup_suppressed + 1;
  if Metrics.is_on Metrics.default then
    Metrics.incr Metrics.default ~peer:(Peer_id.to_string p) ~subsystem:"net"
      "dup_suppressed"

let rec deliver_in_order t (c : conn) p ~src (msg : Message.t) =
  let seq = msg.Message.seq in
  c.next_expected <- seq + 1;
  send_ack t ~src:p ~dst:src ~corr:msg.Message.corr seq;
  dispatch t (peer t p) ~src msg;
  match Hashtbl.find_opt c.buffer (seq + 1) with
  | Some next ->
      Hashtbl.remove c.buffer (seq + 1);
      deliver_in_order t c p ~src next
  | None -> ()

(* Batched-mode variant: same in-order/exactly-once machinery, but the
   acknowledgement is cumulative and deferred via [schedule_ack]
   instead of per-message and immediate. *)
let rec deliver_in_order_batched t (c : conn) p ~src (msg : Message.t) =
  let seq = msg.Message.seq in
  c.next_expected <- seq + 1;
  dispatch t (peer t p) ~src msg;
  match Hashtbl.find_opt c.buffer (seq + 1) with
  | Some next ->
      Hashtbl.remove c.buffer (seq + 1);
      deliver_in_order_batched t c p ~src next
  | None -> ()

let receive_sequenced t p ~src (msg : Message.t) =
  let c = conn t p src in
  let seq = msg.Message.seq in
  let expected = c.next_expected in
  if seq < expected then begin
    (* Already delivered — a go-back-N re-ship or a lost ack.  Owe a
       (cumulative) re-ack so the sender's window drains. *)
    count_dup t p;
    schedule_ack t ~at:p ~from:src c
  end
  else if seq > expected then begin
    if Hashtbl.mem c.buffer seq then count_dup t p
    else Hashtbl.replace c.buffer seq msg
  end
  else begin
    deliver_in_order_batched t c p ~src msg;
    schedule_ack t ~at:p ~from:src c
  end

let on_message t p ~src (msg : Message.t) =
  match msg.Message.payload with
  | Message.Batch { items; ack } ->
      if ack > 0 then handle_cum_ack t ~at:p ~from:src ack;
      List.iter
        (fun item -> receive_sequenced t p ~src (Message.item_message item))
        items
  | Message.Ack { seq } when batched t -> handle_cum_ack t ~at:p ~from:src seq
  | Message.Ack { seq } -> (
      match conn_opt t p src with
      | None -> ()
      | Some c -> (
          match Hashtbl.find_opt c.pending seq with
          | None -> ()
          | Some ps ->
              ps.cancel_retry ();
              Hashtbl.remove c.pending seq))
  | _ when msg.Message.seq = 0 -> dispatch t (peer t p) ~src msg
  | _ ->
      let c = conn t p src in
      let seq = msg.Message.seq in
      let expected = c.next_expected in
      if seq < expected then begin
        (* Already delivered — the ack must have been lost.  Re-ack so
           the sender stops retransmitting. *)
        count_dup t p;
        send_ack t ~src:p ~dst:src ~corr:msg.Message.corr seq
      end
      else if seq > expected then begin
        if Hashtbl.mem c.buffer seq then count_dup t p
        else Hashtbl.replace c.buffer seq msg
      end
      else deliver_in_order t c p ~src msg

(* A crash wipes everything volatile the peer holds: its store,
   registry, catalog, watchers — and the transport's in-flight state
   on both sides of every conversation it participates in as the
   crashed party.  The id generator and the sequence cursors are
   durable (see [rel]); [failover_save] snapshots Σ members for a
   later [failover_load] (wired up by {!Failover.enable} — without it
   a restarted peer comes back empty). *)
let handle_crash t p =
  t.failover_save p;
  (* Every conn (p, _) holds all of p's volatile transport roles: its
     unbatched in-flight sends, its batching queues/windows, its
     early-arrival buffers and its owed delayed acks.  Reset them in
     place, keeping the durable cursors.  (Conns (_, p) belong to live
     senders, which keep retransmitting toward the outage as they
     should.) *)
  let pi = Peer_id.index p in
  Hashtbl.iter
    (fun key (c : conn) ->
      if key lsr 31 = pi then begin
        Hashtbl.iter (fun _ (ps : pending_send) -> ps.cancel_retry ()) c.pending;
        Hashtbl.reset c.pending;
        c.queue <- [];
        c.flush_pending <- false;
        c.unacked <- [];
        c.attempt <- 0;
        c.cancel_retry ();
        c.cancel_retry <- ignore;
        Hashtbl.reset c.buffer;
        c.ack_due <- false;
        c.cancel_ack ();
        c.cancel_ack <- ignore
      end)
    t.rel.conns;
  let old = peer t p in
  set_peer t p (Peer.create ~gen:old.Peer.gen ~policy:old.Peer.policy p);
  (* The semantic cache is volatile: the replacement peer gets a fresh
     empty one (when caching is on), never the pre-crash contents. *)
  attach_qcache t p

(* Restart resynchronization (DESIGN.md §17).  A crash wipes the
   crashed peer's pending transport sends — forwarded appends in
   flight {e from} it are gone — and a long outage may have exhausted
   retransmissions {e toward} it.  Re-shipping the whole replica over
   every forwarding link touching the restarted peer restores replica
   equality; [Migrate_doc]'s replace semantics make each re-ship
   idempotent, and Reliable FIFO sequences it correctly against any
   appends still in flight on the same link. *)
let reship_replica t ~src ~dst doc_name =
  match Axml_doc.Store.peek (peer t src).Peer.store doc_name with
  | Some doc -> (
      match Axml_doc.Document.root doc with
      | Tree.Element _ as root ->
          send t ~src ~dst
            (Message.Migrate_doc
               {
                 name = Names.Doc_name.to_string doc_name;
                 forest = Message.now [ root ];
                 notify = None;
               })
      | Tree.Text _ -> ())
  | None -> ()

let resync_replicas t p =
  List.iter
    (fun (doc, target) ->
      if not (Sim.is_crashed t.sim target) then
        reship_replica t ~src:p ~dst:target doc)
    (Peer.replica_links (peer t p));
  List.iter
    (fun (q : Peer.t) ->
      if
        (not (Peer_id.equal q.Peer.id p))
        && not (Sim.is_crashed t.sim q.Peer.id)
      then
        List.iter
          (fun (doc, target) ->
            if Peer_id.equal target p then
              reship_replica t ~src:q.Peer.id ~dst:p doc)
          (Peer.replica_links q))
    (peers t)

let create ?(response_delay_ms = 1.0) ?(cpu_ms_per_kb = 0.01)
    ?(transport = Raw) ?(wire = Xml) ?(rto_ms = 40.0) ?(max_retries = 30)
    ?(flush_ms = 0.0) ?(ack_delay_ms = 0.0) topology =
  if flush_ms < 0.0 then invalid_arg "System.create: negative flush_ms";
  if ack_delay_ms < 0.0 then invalid_arg "System.create: negative ack_delay_ms";
  let sim = Sim.create topology in
  let t =
    {
      sim;
      peers = Array.make 16 None;
      pmetrics = Array.make 16 None;
      conts = Hashtbl.create 64;
      next_key = 0;
      response_delay_ms;
      cpu_ms_per_kb;
      transport;
      wire;
      rto_ms;
      max_retries;
      flush_ms;
      ack_delay_ms;
      rel =
        {
          conns = Hashtbl.create 64;
          retransmits = 0;
          dup_suppressed = 0;
          abandoned = 0;
          acks_sent = 0;
          batches_sent = 0;
          batched_messages = 0;
          piggybacked_acks = 0;
          delayed_acks = 0;
          dedup_shared_bytes = 0;
        };
      failover_save = ignore;
      failover_load = ignore;
      qcache_capacity = None;
    }
  in
  List.iter
    (fun p ->
      set_peer t p (Peer.create p);
      (* The handler resolves the Peer.t at dispatch time: a crash
         replaces the record behind [p], and a stale capture here
         would resurrect pre-crash state. *)
      Sim.set_handler sim p (fun ~src msg -> on_message t p ~src msg))
    (Axml_net.Topology.peers topology);
  Sim.set_crash_hooks sim
    ~on_crash:(fun p -> handle_crash t p)
    ~on_restart:(fun p ->
      t.failover_load p;
      resync_replicas t p);
  t

let set_failover t ~save ~load =
  t.failover_save <- save;
  t.failover_load <- load

let inject_faults t plan = Sim.inject t.sim plan
let crash t p = Sim.crash t.sim p
let restart t p = Sim.restart t.sim p

(* The membership filter for generic (d@any / s@any) resolution:
   skip members on peers that are currently crashed or cut off from
   [from], so generic calls degrade onto surviving members instead of
   routing into a black hole. *)
let availability t ~from p =
  Peer_id.equal from p || Sim.reachable t.sim ~src:from ~dst:p

let add_document t p ~name tree =
  Axml_doc.Store.add (peer t p).Peer.store (Axml_doc.Document.make ~name tree)

let load_document t p ~name ~xml =
  let tree = Axml_xml.Parser.parse_exn ~gen:(gen_of t p) xml in
  add_document t p ~name tree

let add_service t p service =
  Axml_doc.Registry.add (peer t p).Peer.registry service

let register_doc_class t ~class_name ref_ =
  List.iter
    (fun (p : Peer.t) ->
      Axml_doc.Generic.register_doc p.Peer.catalog ~class_name ref_)
    (peers t)

let unregister_doc_class t ~class_name ref_ =
  List.iter
    (fun (p : Peer.t) ->
      Axml_doc.Generic.unregister_doc p.Peer.catalog ~class_name ref_)
    (peers t)

let register_service_class t ~class_name ref_ =
  List.iter
    (fun (p : Peer.t) ->
      Axml_doc.Generic.register_service p.Peer.catalog ~class_name ref_)
    (peers t)

(* Document-level call activation: steps 1-3 of Section 2.2.  The
   default forward target is the parent of the sc node — responses
   accumulate as siblings of the call. *)
let activate_call_now t ~owner ~doc ~node =
  let self = peer t owner in
  match Axml_doc.Store.find self.Peer.store doc with
  | None -> false
  | Some document -> (
      let root = Axml_doc.Document.root document in
      match Tree.find_by_id node root with
      | None -> false
      | Some element -> (
          match Axml_doc.Sc.of_element element with
          | Error _ -> false
          | Ok sc -> (
              let replies =
                match sc.Axml_doc.Sc.forward with
                | [] -> (
                    match Tree.parent_of node root with
                    | Some parent ->
                        [
                          Message.Node
                            (Names.Node_ref.make ~node:parent.Tree.id
                               ~peer:owner);
                        ]
                    | None ->
                        (* Root-level sc: accumulate under the sc node
                           itself. *)
                        [ Message.Node (Names.Node_ref.make ~node ~peer:owner) ])
                | fw -> List.map (fun r -> Message.Node r) fw
              in
              let params =
                List.map
                  (fun f ->
                    Message.now (Forest.copy ~gen:self.Peer.gen f))
                  sc.Axml_doc.Sc.params
              in
              match sc.Axml_doc.Sc.provider with
              | Names.At provider ->
                  send t ~src:owner ~dst:provider
                    (Message.Invoke
                       { service = sc.Axml_doc.Sc.service; params; replies });
                  true
              | Names.Any -> (
                  let picked =
                    Axml_doc.Generic.pick_service
                      ~available:(availability t ~from:owner)
                      self.Peer.catalog ~policy:self.Peer.policy
                      ~class_name:
                        (Names.Service_name.to_string sc.Axml_doc.Sc.service)
                  in
                  match picked with
                  | Some r -> (
                      match r.Names.Service_ref.at with
                      | Names.At provider ->
                          send t ~src:owner ~dst:provider
                            (Message.Invoke
                               {
                                 service = r.Names.Service_ref.name;
                                 params;
                                 replies;
                               });
                          true
                      | Names.Any -> false)
                  | None ->
                      Log.warn (fun m ->
                          m "peer %a: no member for generic service %a"
                            Peer_id.pp owner Names.Service_name.pp
                            sc.Axml_doc.Sc.service);
                      false))))

(* Each document-level activation is its own logical computation: it
   gets a fresh correlation id, which its Invoke message (and every
   downstream response, insert and acknowledgement) then carries. *)
let activate_call t ~owner ~doc ~node =
  let activated =
    if Trace.enabled () then
      Trace.with_corr (Trace.fresh_corr ()) (fun () ->
          let sid =
            (* Sampling decides per fresh correlation: a dropped
               activation records nothing here or downstream. *)
            if Trace.sampled () then
              Trace.begin_span ~cat:"peer"
                ~peer:(Peer_id.to_string owner)
                ~ts:(Sim.now t.sim)
                ~args:[ ("doc", Names.Doc_name.to_string doc) ]
                "activate_call"
            else Trace.null
          in
          Fun.protect
            ~finally:(fun () -> Trace.end_span sid ~ts:(Sim.now t.sim))
            (fun () -> activate_call_now t ~owner ~doc ~node))
    else activate_call_now t ~owner ~doc ~node
  in
  if activated && Metrics.is_on Metrics.default then
    Metrics.incr Metrics.default
      ~peer:(Peer_id.to_string owner)
      ~subsystem:"peer" "activations";
  activated

let activate_all t ?peer:only () =
  let count = ref 0 in
  List.iter
    (fun (p : Peer.t) ->
      match only with
      | Some o when not (Peer_id.equal o p.Peer.id) -> ()
      | Some _ | None ->
          List.iter
            (fun doc ->
              List.iter
                (fun (node, _sc) ->
                  if
                    activate_call t ~owner:p.Peer.id
                      ~doc:(Axml_doc.Document.name doc) ~node
                  then incr count)
                (Axml_doc.Document.calls doc))
            (Axml_doc.Store.documents p.Peer.store))
    (peers t);
  !count

let run ?max_events t = Sim.run ?max_events t.sim
let now_ms t = Sim.now t.sim
let stats t = Axml_net.Stats.snapshot (Sim.stats t.sim)
let reset_stats t = Axml_net.Stats.reset (Sim.stats t.sim)

let is_tmp name = String.length name >= 4 && String.sub name 0 4 = "_tmp"

let fingerprint t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (p : Peer.t) ->
      Buffer.add_string buf (Peer_id.to_string p.Peer.id);
      Buffer.add_string buf "{docs:";
      List.iter
        (fun name ->
          let ns = Names.Doc_name.to_string name in
          if not (is_tmp ns) then begin
            match Axml_doc.Store.peek p.Peer.store name with
            | Some doc ->
                Buffer.add_string buf ns;
                Buffer.add_char buf '=';
                Buffer.add_string buf
                  (Axml_doc.Equivalence.fingerprint (Axml_doc.Document.root doc));
                Buffer.add_char buf ';'
            | None -> ()
          end)
        (Axml_doc.Store.names p.Peer.store);
      Buffer.add_string buf "|svcs:";
      List.iter
        (fun name ->
          let ns = Names.Service_name.to_string name in
          if not (is_tmp ns) then begin
            Buffer.add_string buf ns;
            Buffer.add_char buf ';'
          end)
        (Axml_doc.Registry.names p.Peer.registry);
      Buffer.add_string buf "}\n")
    (peers t);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Location-independent Σ digest: what the system {e knows}, not
   where it sits.  Identical replicas of a document collapse to one
   entry (sort_uniq), so a migration — which copies content without
   changing it — leaves this fingerprint untouched, while a lost,
   duplicated or diverged append shows up immediately.  The content
   digests come from {!Axml_doc.Equivalence.fingerprint}, which is
   node-id-insensitive, so re-minted ids do not register either. *)
let content_fingerprint t =
  let entries = ref [] in
  List.iter
    (fun (p : Peer.t) ->
      List.iter
        (fun name ->
          let ns = Names.Doc_name.to_string name in
          if not (is_tmp ns) then
            match Axml_doc.Store.peek p.Peer.store name with
            | Some doc ->
                entries :=
                  (ns ^ "="
                  ^ Axml_doc.Equivalence.fingerprint
                      (Axml_doc.Document.root doc))
                  :: !entries
            | None -> ())
        (Axml_doc.Store.names p.Peer.store);
      List.iter
        (fun name ->
          let ns = Names.Service_name.to_string name in
          if not (is_tmp ns) then entries := ("svc:" ^ ns) :: !entries)
        (Axml_doc.Registry.names p.Peer.registry))
    (peers t);
  let buf = Buffer.create 256 in
  List.iter
    (fun e ->
      Buffer.add_string buf e;
      Buffer.add_char buf '\n')
    (List.sort_uniq String.compare !entries);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let find_document t p name =
  Axml_doc.Store.find_by_string (peer t p).Peer.store name

(* A cost environment whose oracles read the live Σ: document sizes
   from the stores, service implementations from the registries, link
   and CPU pricing from the simulator — so a plan optimized against it
   is optimized against the very system about to run it. *)
let cost_env t =
  let topology = Sim.topology t.sim in
  let all_peer_ids = Axml_net.Topology.peers topology in
  let find_doc p (r : Names.Doc_ref.t) =
    Option.bind (peer_slot t p) (fun peer ->
        Axml_doc.Store.find peer.Peer.store r.Names.Doc_ref.name)
  in
  let doc_bytes (r : Names.Doc_ref.t) =
    let doc =
      match r.Names.Doc_ref.at with
      | Names.At p -> find_doc p r
      | Names.Any -> List.find_map (fun p -> find_doc p r) all_peer_ids
    in
    match doc with Some d -> Axml_doc.Document.byte_size d | None -> 4096
  in
  let doc_stats (r : Names.Doc_ref.t) =
    let stats_at p =
      Option.bind (peer_slot t p) (fun peer ->
          Axml_doc.Store.stats_of peer.Peer.store r.Names.Doc_ref.name)
    in
    match r.Names.Doc_ref.at with
    | Names.At p -> stats_at p
    | Names.Any -> List.find_map stats_at all_peer_ids
  in
  let service_query (r : Names.Service_ref.t) =
    let visible p =
      Option.bind (peer_slot t p) (fun peer ->
          Axml_doc.Registry.visible_query peer.Peer.registry
            r.Names.Service_ref.name)
    in
    match r.Names.Service_ref.at with
    | Names.At p -> visible p
    | Names.Any -> List.find_map visible all_peer_ids
  in
  Axml_algebra.Cost.default_env ~cpu_ms_per_kb:t.cpu_ms_per_kb
    ~cpu_factor:(fun p -> Sim.cpu_factor t.sim p)
    ~doc_bytes ~doc_stats ~service_query topology

let pp_state fmt t =
  List.iter
    (fun (p : Peer.t) ->
      Format.fprintf fmt "@[<v 2>peer %a:@ " Peer_id.pp p.Peer.id;
      List.iter
        (fun doc ->
          Format.fprintf fmt "%a@ " Axml_doc.Document.pp doc)
        (Axml_doc.Store.documents p.Peer.store);
      List.iter
        (fun svc -> Format.fprintf fmt "%a@ " Axml_doc.Service.pp svc)
        (Axml_doc.Registry.services p.Peer.registry);
      Format.fprintf fmt "@]@.")
    (peers t)
