module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names
module Sim = Axml_net.Sim
module Tree = Axml_xml.Tree
module Forest = Axml_xml.Forest
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics

let log = Logs.Src.create "axml.system" ~doc:"AXML peer system"

module Log = (val Logs.src_log log)

type emit = Forest.t -> final:bool -> unit

type cont_entry = {
  mutable remaining_finals : int;
  mutable batches : int;
  fn : emit;
}

type t = {
  sim : Message.t Sim.t;
  peers : Peer.t Peer_id.Table.t;
  conts : (int, cont_entry) Hashtbl.t;
  mutable next_key : int;
  response_delay_ms : float;
  cpu_ms_per_kb : float;
}

type eval_hook = t -> ctx:Peer_id.t -> Axml_algebra.Expr.t -> emit:emit -> unit

let eval_hook : eval_hook ref =
  ref (fun _ ~ctx:_ _ ~emit:_ ->
      failwith
        "System: no expression evaluator installed (Axml_peer.Exec not \
         linked?)")

let set_eval_hook f = eval_hook := f
let sim t = t.sim
let response_delay_ms t = t.response_delay_ms
let cpu_ms_per_kb t = t.cpu_ms_per_kb

let peer t p =
  match Peer_id.Table.find_opt t.peers p with
  | Some peer -> peer
  | None -> raise Not_found

let peers t =
  Axml_net.Topology.peers (Sim.topology t.sim) |> List.map (peer t)

let gen_of t p = (peer t p).Peer.gen

let fresh_key t =
  let k = t.next_key in
  t.next_key <- t.next_key + 1;
  k

let set_cont ?(expected_finals = 1) t key f =
  Hashtbl.replace t.conts key
    { remaining_finals = expected_finals; batches = 0; fn = f }

let send t ~src ~dst payload =
  let note =
    (* Rendering the note costs; only pay when someone listens. *)
    if Axml_net.Stats.tracing_enabled (Sim.stats t.sim) then
      Some (Format.asprintf "%a" Message.pp payload)
    else None
  in
  let bytes = Message.bytes payload in
  (* Per-peer send metrics mirror Stats exactly: bytes count remote
     messages only, loopbacks are tallied separately — so the metrics
     table and Stats.snapshot agree to the byte. *)
  if Metrics.is_on Metrics.default then begin
    let peer = Peer_id.to_string src in
    if Peer_id.equal src dst then
      Metrics.incr Metrics.default ~peer ~subsystem:"net" "local_messages"
    else begin
      Metrics.incr Metrics.default ~peer ~subsystem:"net" "messages_sent";
      Metrics.incr Metrics.default ~peer ~by:bytes ~subsystem:"net" "bytes_sent"
    end
  end;
  Sim.send ?note t.sim ~src ~dst ~bytes
    (Message.make ~corr:(Trace.current_corr ()) payload)

let consume_cpu t ~peer ~bytes =
  Sim.consume_cpu t.sim ~peer
    ~ms:(t.cpu_ms_per_kb *. (float_of_int bytes /. 1024.0))

let route ?notify t ~src dest forest ~final =
  (* [notify] rides on the message so the acknowledgement fires at the
     destination, after the side effect — a bare ack message would
     overtake the (larger, slower) data it acknowledges. *)
  if Metrics.is_on Metrics.default then
    Metrics.incr Metrics.default ~peer:(Peer_id.to_string src)
      ~subsystem:"peer" "routed_batches";
  if Trace.enabled () then
    Trace.instant ~cat:"peer"
      ~peer:(Peer_id.to_string src)
      ~ts:(Sim.now t.sim)
      ~args:
        [
          ( "dest",
            match dest with
            | Message.Cont { peer; key } ->
                Printf.sprintf "cont[%d]@%s" key (Peer_id.to_string peer)
            | Message.Node r ->
                "node@" ^ Peer_id.to_string r.Names.Node_ref.peer
            | Message.Install { peer; name } ->
                Printf.sprintf "install %s@%s" name (Peer_id.to_string peer) );
          ("bytes", string_of_int (Forest.byte_size forest));
          ("final", string_of_bool final);
        ]
      "route";
  let notify = if final then notify else None in
  match dest with
  | Message.Cont { peer; key } ->
      if forest <> [] || final then
        send t ~src ~dst:peer (Message.Stream { key; forest; final })
  | Message.Node r ->
      if forest <> [] || notify <> None then
        send t ~src ~dst:r.Names.Node_ref.peer
          (Message.Insert { node = r.Names.Node_ref.node; forest; notify })
  | Message.Install { peer; name } ->
      if forest <> [] || notify <> None then
        send t ~src ~dst:peer (Message.Install_doc { name; forest; notify })

(* Notify doc-feed watchers that a document has grown. *)
let notify_watchers t self doc_name forest =
  List.iter
    (fun dest -> route t ~src:self.Peer.id dest forest ~final:false)
    (Peer.watchers_of self doc_name)

let run_service t (self : Peer.t) service params replies =
  let respond forest ~final =
    List.iter (fun dest -> route t ~src:self.Peer.id dest forest ~final) replies
  in
  match Axml_doc.Registry.find self.Peer.registry service with
  | None ->
      Log.warn (fun m ->
          m "peer %a: invoke of unknown service %a" Peer_id.pp self.Peer.id
            Names.Service_name.pp service);
      respond [] ~final:true
  | Some svc -> (
      match Axml_doc.Service.impl svc with
      | Axml_doc.Service.Declarative q ->
          let input_bytes =
            List.fold_left (fun acc f -> acc + Forest.byte_size f) 0 params
          in
          consume_cpu t ~peer:self.Peer.id ~bytes:input_bytes;
          let out =
            try Axml_query.Compile.eval ~gen:self.Peer.gen q params
            with Invalid_argument msg ->
              Log.err (fun m ->
                  m "peer %a: service %a failed: %s" Peer_id.pp self.Peer.id
                    Names.Service_name.pp service msg);
              []
          in
          respond out ~final:true
      | Axml_doc.Service.Extern f ->
          let out =
            try f params
            with exn ->
              Log.err (fun m ->
                  m "peer %a: extern service %a raised %s" Peer_id.pp
                    self.Peer.id Names.Service_name.pp service
                    (Printexc.to_string exn));
              []
          in
          (* A continuous service sends its responses successively
             (Section 2.1); space them by the configured delay. *)
          if Axml_doc.Service.continuous svc && List.length out > 1 then
            List.iteri
              (fun i tree ->
                let final = i = List.length out - 1 in
                Sim.after t.sim ~peer:self.Peer.id
                  ~delay_ms:(t.response_delay_ms *. float_of_int i)
                  (fun () -> respond [ tree ] ~final))
              out
          else respond out ~final:true
      | Axml_doc.Service.Doc_feed doc_name ->
          let current =
            match Axml_doc.Store.find self.Peer.store doc_name with
            | Some doc ->
                List.map
                  (Tree.copy ~gen:self.Peer.gen)
                  (Tree.children (Axml_doc.Document.root doc))
            | None -> []
          in
          (* Initial batch now; future inserts via the watcher list.
             A feed never terminates — no final batch. *)
          respond current ~final:false;
          List.iter (fun dest -> Peer.watch self doc_name dest) replies)

let ping t (self : Peer.t) = function
  | None -> ()
  | Some (peer, key) ->
      send t ~src:self.Peer.id ~dst:peer
        (Message.Stream { key; forest = []; final = true })

let handle_insert t (self : Peer.t) node forest notify =
  (match Peer.find_doc_with_node self node with
  | None ->
      Log.warn (fun m ->
          m "peer %a: insert target node %a not found" Peer_id.pp self.Peer.id
            Axml_xml.Node_id.pp node)
  | Some doc -> (
      let name = Axml_doc.Document.name doc in
      (* Store-level insert: keeps the document's structural index
         maintained incrementally instead of invalidating it. *)
      match Axml_doc.Store.insert_under self.Peer.store name ~node forest with
      | None -> ()
      | Some _ -> notify_watchers t self name forest));
  ping t self notify

let handle_install t (self : Peer.t) name forest notify =
  (match Axml_doc.Store.find_by_string self.Peer.store name with
  | Some doc ->
      (* Subsequent batches of the same stream accumulate under the
         existing root. *)
      let root = Axml_doc.Document.root doc in
      (match Tree.id root with
      | Some node -> (
          match
            Axml_doc.Store.insert_under self.Peer.store
              (Axml_doc.Document.name doc) ~node forest
          with
          | Some _ -> notify_watchers t self (Axml_doc.Document.name doc) forest
          | None -> ())
      | None -> ())
  | None ->
      let root =
        match forest with
        | [ (Tree.Element _ as tree) ] -> tree
        | forest ->
            Tree.element ~gen:self.Peer.gen
              (Axml_xml.Label.of_string "doc")
              forest
      in
      ignore (Axml_doc.Store.install self.Peer.store ~name root));
  ping t self notify

let dispatch_payload t (self : Peer.t) ~src payload =
  ignore src;
  match payload with
  | Message.Stream { key; forest; final } -> (
      match Hashtbl.find_opt t.conts key with
      | None ->
          Log.debug (fun m ->
              m "peer %a: stream for dead continuation %d" Peer_id.pp
                self.Peer.id key)
      | Some entry ->
          entry.batches <- entry.batches + 1;
          if final then begin
            entry.remaining_finals <- entry.remaining_finals - 1;
            if entry.remaining_finals <= 0 then begin
              Hashtbl.remove t.conts key;
              if Metrics.is_on Metrics.default then
                Metrics.observe Metrics.default
                  ~peer:(Peer_id.to_string self.Peer.id)
                  ~subsystem:"stream" "batches"
                  (float_of_int entry.batches)
            end
          end;
          (* The consumer sees the stream close only when every
             expected source has finished. *)
          entry.fn forest ~final:(final && entry.remaining_finals <= 0))
  | Message.Eval_request { expr; replies; ack } ->
      let is_side_effecting = function
        | Message.Cont _ -> false
        | Message.Node _ | Message.Install _ -> true
      in
      let side_dests = List.filter is_side_effecting replies in
      let finished = ref false in
      let emit forest ~final =
        if not !finished then begin
          List.iter
            (fun dest ->
              let notify = if is_side_effecting dest then ack else None in
              route ?notify t ~src:self.Peer.id dest forest ~final)
            replies;
          if final then begin
            finished := true;
            (* With no side-effecting destination the ack fires
               directly; otherwise the destinations acknowledge after
               applying the final batch. *)
            match ack with
            | Some (peer, key) when side_dests = [] ->
                send t ~src:self.Peer.id ~dst:peer
                  (Message.Stream { key; forest = []; final = true })
            | Some _ | None -> ()
          end
        end
      in
      !eval_hook t ~ctx:self.Peer.id expr ~emit
  | Message.Invoke { service; params; replies } ->
      run_service t self service params replies
  | Message.Insert { node; forest; notify } ->
      handle_insert t self node forest notify
  | Message.Install_doc { name; forest; notify } ->
      handle_install t self name forest notify
  | Message.Deploy { prefix; query; reply } ->
      let name =
        Axml_doc.Registry.install_query self.Peer.registry ~prefix query
      in
      route t ~src:self.Peer.id reply
        [ Tree.text (Names.Service_name.to_string name) ]
        ~final:true
  | Message.Query_shipped { key; query = _ } -> (
      match Hashtbl.find_opt t.conts key with
      | None -> ()
      | Some entry ->
          Hashtbl.remove t.conts key;
          entry.fn [] ~final:true)

(* Delivery entry point: re-establish the sender's correlation id as
   the ambient one, so spans recorded here — and any messages sent
   from here — stay attached to the logical computation that caused
   this delivery, across any number of hops. *)
let dispatch t (self : Peer.t) ~src (msg : Message.t) =
  if Trace.enabled () then
    Trace.with_corr msg.Message.corr (fun () ->
        let sid =
          Trace.begin_span ~cat:"peer"
            ~peer:(Peer_id.to_string self.Peer.id)
            ~ts:(Sim.now t.sim)
            ~args:[ ("src", Peer_id.to_string src) ]
            ("handle " ^ Message.tag msg.Message.payload)
        in
        Fun.protect
          ~finally:(fun () ->
            Trace.end_span sid
              ~ts:(max (Sim.now t.sim) (Sim.busy_until t.sim self.Peer.id)))
          (fun () -> dispatch_payload t self ~src msg.Message.payload))
  else dispatch_payload t self ~src msg.Message.payload

let create ?(response_delay_ms = 1.0) ?(cpu_ms_per_kb = 0.01) topology =
  let sim = Sim.create topology in
  let t =
    {
      sim;
      peers = Peer_id.Table.create 16;
      conts = Hashtbl.create 64;
      next_key = 0;
      response_delay_ms;
      cpu_ms_per_kb;
    }
  in
  List.iter
    (fun p ->
      let peer = Peer.create p in
      Peer_id.Table.replace t.peers p peer;
      Sim.set_handler sim p (fun ~src payload -> dispatch t peer ~src payload))
    (Axml_net.Topology.peers topology);
  t

let add_document t p ~name tree =
  Axml_doc.Store.add (peer t p).Peer.store (Axml_doc.Document.make ~name tree)

let load_document t p ~name ~xml =
  let tree = Axml_xml.Parser.parse_exn ~gen:(gen_of t p) xml in
  add_document t p ~name tree

let add_service t p service =
  Axml_doc.Registry.add (peer t p).Peer.registry service

let register_doc_class t ~class_name ref_ =
  List.iter
    (fun (p : Peer.t) ->
      Axml_doc.Generic.register_doc p.Peer.catalog ~class_name ref_)
    (peers t)

let register_service_class t ~class_name ref_ =
  List.iter
    (fun (p : Peer.t) ->
      Axml_doc.Generic.register_service p.Peer.catalog ~class_name ref_)
    (peers t)

(* Document-level call activation: steps 1-3 of Section 2.2.  The
   default forward target is the parent of the sc node — responses
   accumulate as siblings of the call. *)
let activate_call_now t ~owner ~doc ~node =
  let self = peer t owner in
  match Axml_doc.Store.find self.Peer.store doc with
  | None -> false
  | Some document -> (
      let root = Axml_doc.Document.root document in
      match Tree.find_by_id node root with
      | None -> false
      | Some element -> (
          match Axml_doc.Sc.of_element element with
          | Error _ -> false
          | Ok sc -> (
              let replies =
                match sc.Axml_doc.Sc.forward with
                | [] -> (
                    match Tree.parent_of node root with
                    | Some parent ->
                        [
                          Message.Node
                            (Names.Node_ref.make ~node:parent.Tree.id
                               ~peer:owner);
                        ]
                    | None ->
                        (* Root-level sc: accumulate under the sc node
                           itself. *)
                        [ Message.Node (Names.Node_ref.make ~node ~peer:owner) ])
                | fw -> List.map (fun r -> Message.Node r) fw
              in
              let params =
                List.map
                  (Forest.copy ~gen:self.Peer.gen)
                  sc.Axml_doc.Sc.params
              in
              match sc.Axml_doc.Sc.provider with
              | Names.At provider ->
                  send t ~src:owner ~dst:provider
                    (Message.Invoke
                       { service = sc.Axml_doc.Sc.service; params; replies });
                  true
              | Names.Any -> (
                  let picked =
                    Axml_doc.Generic.pick_service self.Peer.catalog
                      ~policy:self.Peer.policy
                      ~class_name:
                        (Names.Service_name.to_string sc.Axml_doc.Sc.service)
                  in
                  match picked with
                  | Some r -> (
                      match r.Names.Service_ref.at with
                      | Names.At provider ->
                          send t ~src:owner ~dst:provider
                            (Message.Invoke
                               {
                                 service = r.Names.Service_ref.name;
                                 params;
                                 replies;
                               });
                          true
                      | Names.Any -> false)
                  | None ->
                      Log.warn (fun m ->
                          m "peer %a: no member for generic service %a"
                            Peer_id.pp owner Names.Service_name.pp
                            sc.Axml_doc.Sc.service);
                      false))))

(* Each document-level activation is its own logical computation: it
   gets a fresh correlation id, which its Invoke message (and every
   downstream response, insert and acknowledgement) then carries. *)
let activate_call t ~owner ~doc ~node =
  let activated =
    if Trace.enabled () then
      Trace.with_corr (Trace.fresh_corr ()) (fun () ->
          let sid =
            Trace.begin_span ~cat:"peer"
              ~peer:(Peer_id.to_string owner)
              ~ts:(Sim.now t.sim)
              ~args:[ ("doc", Names.Doc_name.to_string doc) ]
              "activate_call"
          in
          Fun.protect
            ~finally:(fun () -> Trace.end_span sid ~ts:(Sim.now t.sim))
            (fun () -> activate_call_now t ~owner ~doc ~node))
    else activate_call_now t ~owner ~doc ~node
  in
  if activated && Metrics.is_on Metrics.default then
    Metrics.incr Metrics.default
      ~peer:(Peer_id.to_string owner)
      ~subsystem:"peer" "activations";
  activated

let activate_all t ?peer:only () =
  let count = ref 0 in
  List.iter
    (fun (p : Peer.t) ->
      match only with
      | Some o when not (Peer_id.equal o p.Peer.id) -> ()
      | Some _ | None ->
          List.iter
            (fun doc ->
              List.iter
                (fun (node, _sc) ->
                  if
                    activate_call t ~owner:p.Peer.id
                      ~doc:(Axml_doc.Document.name doc) ~node
                  then incr count)
                (Axml_doc.Document.calls doc))
            (Axml_doc.Store.documents p.Peer.store))
    (peers t);
  !count

let run ?max_events t = Sim.run ?max_events t.sim
let now_ms t = Sim.now t.sim
let stats t = Axml_net.Stats.snapshot (Sim.stats t.sim)
let reset_stats t = Axml_net.Stats.reset (Sim.stats t.sim)

let is_tmp name = String.length name >= 4 && String.sub name 0 4 = "_tmp"

let fingerprint t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (p : Peer.t) ->
      Buffer.add_string buf (Peer_id.to_string p.Peer.id);
      Buffer.add_string buf "{docs:";
      List.iter
        (fun name ->
          let ns = Names.Doc_name.to_string name in
          if not (is_tmp ns) then begin
            match Axml_doc.Store.find p.Peer.store name with
            | Some doc ->
                Buffer.add_string buf ns;
                Buffer.add_char buf '=';
                Buffer.add_string buf
                  (Axml_doc.Equivalence.fingerprint (Axml_doc.Document.root doc));
                Buffer.add_char buf ';'
            | None -> ()
          end)
        (Axml_doc.Store.names p.Peer.store);
      Buffer.add_string buf "|svcs:";
      List.iter
        (fun name ->
          let ns = Names.Service_name.to_string name in
          if not (is_tmp ns) then begin
            Buffer.add_string buf ns;
            Buffer.add_char buf ';'
          end)
        (Axml_doc.Registry.names p.Peer.registry);
      Buffer.add_string buf "}\n")
    (peers t);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let find_document t p name =
  Axml_doc.Store.find_by_string (peer t p).Peer.store name

(* A cost environment whose oracles read the live Σ: document sizes
   from the stores, service implementations from the registries, link
   and CPU pricing from the simulator — so a plan optimized against it
   is optimized against the very system about to run it. *)
let cost_env t =
  let topology = Sim.topology t.sim in
  let all_peer_ids = Axml_net.Topology.peers topology in
  let find_doc p (r : Names.Doc_ref.t) =
    Option.bind (Peer_id.Table.find_opt t.peers p) (fun peer ->
        Axml_doc.Store.find peer.Peer.store r.Names.Doc_ref.name)
  in
  let doc_bytes (r : Names.Doc_ref.t) =
    let doc =
      match r.Names.Doc_ref.at with
      | Names.At p -> find_doc p r
      | Names.Any -> List.find_map (fun p -> find_doc p r) all_peer_ids
    in
    match doc with Some d -> Axml_doc.Document.byte_size d | None -> 4096
  in
  let doc_stats (r : Names.Doc_ref.t) =
    let stats_at p =
      Option.bind (Peer_id.Table.find_opt t.peers p) (fun peer ->
          Axml_doc.Store.stats_of peer.Peer.store r.Names.Doc_ref.name)
    in
    match r.Names.Doc_ref.at with
    | Names.At p -> stats_at p
    | Names.Any -> List.find_map stats_at all_peer_ids
  in
  let service_query (r : Names.Service_ref.t) =
    let visible p =
      Option.bind (Peer_id.Table.find_opt t.peers p) (fun peer ->
          Axml_doc.Registry.visible_query peer.Peer.registry
            r.Names.Service_ref.name)
    in
    match r.Names.Service_ref.at with
    | Names.At p -> visible p
    | Names.Any -> List.find_map visible all_peer_ids
  in
  Axml_algebra.Cost.default_env ~cpu_ms_per_kb:t.cpu_ms_per_kb
    ~cpu_factor:(fun p -> Sim.cpu_factor t.sim p)
    ~doc_bytes ~doc_stats ~service_query topology

let pp_state fmt t =
  List.iter
    (fun (p : Peer.t) ->
      Format.fprintf fmt "@[<v 2>peer %a:@ " Peer_id.pp p.Peer.id;
      List.iter
        (fun doc ->
          Format.fprintf fmt "%a@ " Axml_doc.Document.pp doc)
        (Axml_doc.Store.documents p.Peer.store);
      List.iter
        (fun svc -> Format.fprintf fmt "%a@ " Axml_doc.Service.pp svc)
        (Axml_doc.Registry.services p.Peer.registry);
      Format.fprintf fmt "@]@.")
    (peers t)
