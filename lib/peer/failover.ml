(* Crash recovery via Persist checkpoints.

   The save hook runs at crash time, which looks like cheating — a
   really dead process cannot save anything.  It is not: the durable
   state captured here (documents, services, catalog) is exactly the
   state a continuously-persisted store would have on disk at the
   moment of the crash, and snapshotting lazily at the instant it
   becomes unreachable is equivalent to having written it through all
   along.  Volatile state (watchers, in-flight transport buffers,
   continuations) is *not* in the checkpoint — losing it is the point
   of the exercise. *)

module Peer_id = Axml_net.Peer_id

type t = { checkpoints : (string, string) Hashtbl.t; dir : string option }

let snapshot t p =
  Option.bind
    (Hashtbl.find_opt t.checkpoints (Peer_id.to_string p))
    Option.some

let enable ?dir sys =
  let t = { checkpoints = Hashtbl.create 8; dir } in
  let path p =
    Option.map
      (fun d -> Filename.concat d (Peer_id.to_string p ^ ".checkpoint.xml"))
      t.dir
  in
  let save p =
    let xml = Persist.checkpoint_xml sys p in
    Hashtbl.replace t.checkpoints (Peer_id.to_string p) xml;
    Option.iter
      (fun file ->
        if not (Sys.file_exists (Filename.dirname file)) then
          Sys.mkdir (Filename.dirname file) 0o755;
        let oc = open_out_bin file in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc xml))
      (path p)
  in
  let load p =
    match snapshot t p with
    | Some xml -> (
        match Persist.restore_checkpoint sys p xml with
        | Ok () -> ()
        | Error e ->
            Logs.err (fun m ->
                m "failover: restoring %a failed: %s" Peer_id.pp p e))
    | None ->
        Logs.warn (fun m ->
            m "failover: no checkpoint for %a; restarting empty" Peer_id.pp p)
  in
  System.set_failover sys ~save ~load;
  t
