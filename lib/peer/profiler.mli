(** Per-operator query profiling (EXPLAIN ANALYZE for plans).

    Folds the trace of one profiled run ({!Exec.run_profiled}) back
    onto the operators of the plan expression and pairs each with the
    planner's static estimate ({!Axml_algebra.Cost.of_expr}).

    Operators are numbered pre-order: the root is [0] and the subtree
    rooted at id [k] occupies the id range [k, k + size).  The
    numbering is recomputable from an operator's id and the expression
    alone, so delegations need only ship the id
    (see {!Message.t}).

    Exclusive sim time is an interval sweep over the root ["execute"]
    span: every elementary interval goes to the deepest covering span,
    so the per-operator exclusive times {e partition} the root
    interval — they sum to the root's total by construction, which is
    the report's self-check ({!sums_to_root}). *)

val child_op : parent:int -> Axml_algebra.Expr.t list -> int -> int
(** [child_op ~parent children i]: the pre-order id of child [i] of
    the operator numbered [parent] whose children are [children]
    (its {!Axml_algebra.Expr.subexpressions}).  [-1] when [parent]
    is [-1] (profiling off). *)

val label : Axml_algebra.Expr.t -> string
(** Short human label for an operator (["query_app/2@p1"], …). *)

val operators :
  ctx:Axml_net.Peer_id.t ->
  Axml_algebra.Expr.t ->
  (int * Axml_net.Peer_id.t * Axml_algebra.Expr.t) list
(** Pre-order [(id, evaluation context, operator)] listing; the
    context threads the way {!Exec.eval} moves work (a query
    application evaluates its arguments at its own site, eval\@p runs
    its body at [p]). *)

type op_row = {
  op : int;
  op_label : string;
  est : Axml_algebra.Cost.t;  (** Planner estimate for the subtree. *)
  excl_ms : float;  (** Exclusive sim time (partition of the root). *)
  cpu_ms : float;  (** Busy-horizon growth of deliveries. *)
  bytes : int;  (** Wire bytes of transfers attributed here. *)
  messages : int;  (** Logical messages (transfer spans). *)
  index_hits : int;
  index_fallbacks : int;
  err_ratio : float;
      (** [|excl_ms - est.latency_ms| / max(est.latency_ms, 1µs)];
          also fed to the [profiler/est_error_ratio] histogram. *)
}

type report = {
  rows : op_row list;  (** One per plan operator, ascending id. *)
  root_ms : float;  (** Duration of the ["execute"] span. *)
  total_excl_ms : float;  (** Σ [excl_ms]; equals [root_ms] up to fp. *)
}

val sums_to_root : report -> bool
(** The acceptance self-check: Σ per-operator exclusive sim time
    equals the root span's duration (1e-6 relative tolerance). *)

val report :
  env:Axml_algebra.Cost.env ->
  ctx:Axml_net.Peer_id.t ->
  events:Axml_obs.Trace.event list ->
  Axml_algebra.Expr.t ->
  report
(** Fold the events of one profiled run (already sliced to the run)
    into a report for the given plan. *)

val pp_report : Format.formatter -> report -> unit
(** Render the estimate-vs-observed table plus the sum-to-root check
    line (["operator sim-time totals sum to root: OK (...)"]). *)
