module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names
module Forest = Axml_xml.Forest

type reply_dest =
  | Cont of { peer : Peer_id.t; key : int }
  | Node of Names.Node_ref.t
  | Install of { peer : Peer_id.t; name : string }

(* A forest as carried by a message: either materialized ([Done]) or
   still sitting encoded in a received frame ([Todo]).  The binary
   codec builds [Todo] values whose [decode] thunk parses the frame
   slice on first touch; [enc] keeps the slice itself so the forest
   can be re-encoded (relay forwarding, retransmission) without ever
   being parsed.  [wire] caches the encoded-section length and [dig]
   the structural digest — both are per-message scratch owned by the
   codec and the batch dedup; neither affects equality of the carried
   forest. *)
type lforest = { mutable st : lstate; mutable wire : int; mutable dig : int }

and lstate =
  | Done of Forest.t
  | Todo of {
      trees : int;
      decode : unit -> Forest.t;
      enc : Bytes.t * int * int;
    }

let now f = { st = Done f; wire = -1; dig = 0 }
let delay ~trees ~enc decode = { st = Todo { trees; decode; enc }; wire = -1; dig = 0 }

(* Count of lazy payload decodes since the last reset — the
   observable that proves relays and the transport layer never touch
   forest content (they slice frames instead). *)
let decodes = ref 0
let payload_decodes () = !decodes
let reset_payload_decodes () = decodes := 0

let force lf =
  match lf.st with
  | Done f -> f
  | Todo { decode; _ } ->
      incr decodes;
      let f = decode () in
      lf.st <- Done f;
      f

let peek lf = match lf.st with Done f -> Some f | Todo _ -> None
let trees lf = match lf.st with Done f -> List.length f | Todo { trees; _ } -> trees
let is_forced lf = match lf.st with Done _ -> true | Todo _ -> false

type payload =
  | Stream of { key : int; forest : lforest; final : bool }
  | Eval_request of {
      expr : Axml_algebra.Expr.t;
      replies : reply_dest list;
      ack : (Peer_id.t * int) option;
    }
  | Invoke of {
      service : Names.Service_name.t;
      params : lforest list;
      replies : reply_dest list;
    }
  | Insert of {
      node : Axml_xml.Node_id.t;
      forest : lforest;
      notify : (Peer_id.t * int) option;
    }
  | Install_doc of {
      name : string;
      forest : lforest;
      notify : (Peer_id.t * int) option;
    }
  | Migrate_doc of {
      name : string;
      forest : lforest;
      notify : (Peer_id.t * int) option;
    }
      (** Placement handoff: install-or-replace a replica of [name] at
          the destination, {e preserving} the shipped node ids (the
          codec and [now] forests both carry them), so queries resolve
          the same ids on every replica. *)
  | Retract_doc of { name : string; notify : (Peer_id.t * int) option }
      (** Placement cleanup: drop the replica of [name] at the
          destination (idempotent). *)
  | Deploy of {
      prefix : string;
      query : Axml_query.Ast.t;
      reply : reply_dest;
    }
  | Query_shipped of { key : int; query : Axml_query.Ast.t }
  | Ack of { seq : int }
  | Batch of { items : batch_item list; ack : int }

and batch_item =
  | Full of t
  | Shared of { msg : t; of_seq : int; saved : int }

and t = { payload : payload; corr : int; seq : int; op : int }

let make ?(corr = 0) ?(seq = 0) ?(op = -1) payload = { payload; corr; seq; op }

let envelope = 64
(* Headers, addressing, framing.  The correlation id and the
   profiler's plan-operator id travel inside this budget — they do
   not change the charged size, so traced, profiled and plain runs
   ship identical byte counts. *)

let item_header = 16
(* Per-item framing inside a batch: sequence number, payload kind and
   length prefix — much smaller than a full envelope, which is where
   batching's fixed-cost saving comes from. *)

let backref_bytes = 4
(* A dedup back-reference: "same forest as item #n of this batch". *)

(* XML-model size of a carried forest.  Forces a lazy forest: the XML
   size model needs the trees.  (The binary wire never calls this —
   it charges encoded frame lengths from Codec, which reads cached
   slice lengths instead.) *)
let lf_bytes lf = Forest.byte_size_cached (force lf)

let rec bytes = function
  | Stream { forest; _ } -> envelope + lf_bytes forest
  | Eval_request { expr; _ } -> envelope + Axml_algebra.Expr_xml.byte_size expr
  | Invoke { params; _ } ->
      envelope + List.fold_left (fun acc f -> acc + lf_bytes f) 0 params
  | Insert { forest; _ } | Install_doc { forest; _ } | Migrate_doc { forest; _ }
    ->
      envelope + lf_bytes forest
  | Retract_doc _ -> envelope
  | Deploy { query; _ } | Query_shipped { query; _ } ->
      envelope + String.length (Axml_query.Ast.to_string query)
  | Ack _ -> envelope
  | Batch { items; _ } ->
      List.fold_left
        (fun acc -> function
          | Full m -> acc + item_header + (bytes m.payload - envelope)
          | Shared { msg; saved; _ } ->
              acc + item_header + (bytes msg.payload - envelope) - saved
              + backref_bytes)
        envelope items

(* The forest a payload materializes at the destination — the only
   part of a message bulky enough to be worth sharing inside a batch
   (rule (13), transfer sharing, applied at the transport layer). *)
let shareable_forest = function
  | Stream { forest; _ }
  | Insert { forest; _ }
  | Install_doc { forest; _ }
  | Migrate_doc { forest; _ } ->
      if trees forest = 0 then None else Some forest
  | Eval_request _ | Invoke _ | Deploy _ | Query_shipped _ | Ack _ | Batch _
  | Retract_doc _ ->
      None

(* Structural digest of the carried forest, cached per message.  0 is
   the unset sentinel; Forest.shape_hash never returns 0. *)
let shape_digest lf =
  if lf.dig <> 0 then lf.dig
  else begin
    let d = Forest.shape_hash (force lf) in
    lf.dig <- d;
    d
  end

let batch ~ack msgs =
  (* Dedup within the frame.  Key: the cached structural digest (an
     int — no serialization).  Buckets verify candidates first by
     pointer, then by [Forest.equal_shape], so the sharing decision
     is exactly "same serialized forest" as before, without the
     serializer. *)
  let seen : (int, (lforest * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let items =
    List.map
      (fun (m : t) ->
        match shareable_forest m.payload with
        | None -> Full m
        | Some lf -> (
            let d = shape_digest lf in
            let bucket =
              match Hashtbl.find_opt seen d with
              | Some b -> b
              | None ->
                  let b = ref [] in
                  Hashtbl.add seen d b;
                  b
            in
            let same (lf0, _) =
              lf0 == lf
              || Forest.equal_shape (force lf0) (force lf)
            in
            match List.find_opt same !bucket with
            | Some (_, of_seq) ->
                Shared { msg = m; of_seq; saved = lf_bytes lf }
            | None ->
                bucket := (lf, m.seq) :: !bucket;
                Full m))
      msgs
  in
  Batch { items; ack }

let item_message = function Full m -> m | Shared { msg; _ } -> msg

let batch_saved = function
  | Batch { items; _ } ->
      List.fold_left
        (fun acc -> function Full _ -> acc | Shared { saved; _ } -> acc + saved)
        0 items
  | _ -> 0

let batch_size = function
  | Batch { items; _ } -> List.length items
  | _ -> 1

let reply_peer = function
  | Cont { peer; _ } -> peer
  | Node r -> r.Names.Node_ref.peer
  | Install { peer; _ } -> peer

let tag = function
  | Stream _ -> "stream"
  | Eval_request _ -> "eval-request"
  | Invoke _ -> "invoke"
  | Insert _ -> "insert"
  | Install_doc _ -> "install-doc"
  | Migrate_doc _ -> "migrate-doc"
  | Retract_doc _ -> "retract-doc"
  | Deploy _ -> "deploy"
  | Query_shipped _ -> "query-shipped"
  | Ack _ -> "ack"
  | Batch _ -> "batch"

(* Printing must not force a lazy forest — tracing a relayed frame
   would otherwise defeat zero-parse forwarding.  An undecoded forest
   prints its encoded-slice length instead. *)
let pp_lf_bytes fmt lf =
  match lf.st with
  | Done f -> Format.fprintf fmt "%dB" (Forest.byte_size_cached f)
  | Todo { enc = _, _, len; _ } -> Format.fprintf fmt "%dB-enc" len

let rec pp fmt = function
  | Stream { key; forest; final } ->
      Format.fprintf fmt "stream[%d] %a%s" key pp_lf_bytes forest
        (if final then " (final)" else "")
  | Eval_request { expr; _ } ->
      Format.fprintf fmt "eval-request %a" Axml_algebra.Expr.pp expr
  | Invoke { service; params; _ } ->
      Format.fprintf fmt "invoke %a/%d" Names.Service_name.pp service
        (List.length params)
  | Insert { node; forest; _ } ->
      Format.fprintf fmt "insert %a under %a" pp_lf_bytes forest
        Axml_xml.Node_id.pp node
  | Install_doc { name; forest; _ } ->
      Format.fprintf fmt "install %s (%a)" name pp_lf_bytes forest
  | Migrate_doc { name; forest; _ } ->
      Format.fprintf fmt "migrate %s (%a)" name pp_lf_bytes forest
  | Retract_doc { name; _ } -> Format.fprintf fmt "retract %s" name
  | Deploy { prefix; _ } -> Format.fprintf fmt "deploy %s_*" prefix
  | Query_shipped { key; _ } -> Format.fprintf fmt "query-shipped[%d]" key
  | Ack { seq } -> Format.fprintf fmt "ack[%d]" seq
  | Batch { items; ack } as b ->
      Format.fprintf fmt "batch(%d item%s, ack %d, %dB" (List.length items)
        (if List.length items = 1 then "" else "s")
        ack (bytes b);
      (match batch_saved b with
      | 0 -> ()
      | saved -> Format.fprintf fmt ", %dB shared" saved);
      Format.fprintf fmt "): ";
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
        (fun fmt item ->
          let m = item_message item in
          Format.fprintf fmt "#%d %a" m.seq pp m.payload)
        fmt items
