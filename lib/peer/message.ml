module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names
module Forest = Axml_xml.Forest

type reply_dest =
  | Cont of { peer : Peer_id.t; key : int }
  | Node of Names.Node_ref.t
  | Install of { peer : Peer_id.t; name : string }

type payload =
  | Stream of { key : int; forest : Forest.t; final : bool }
  | Eval_request of {
      expr : Axml_algebra.Expr.t;
      replies : reply_dest list;
      ack : (Peer_id.t * int) option;
    }
  | Invoke of {
      service : Names.Service_name.t;
      params : Forest.t list;
      replies : reply_dest list;
    }
  | Insert of {
      node : Axml_xml.Node_id.t;
      forest : Forest.t;
      notify : (Peer_id.t * int) option;
    }
  | Install_doc of {
      name : string;
      forest : Forest.t;
      notify : (Peer_id.t * int) option;
    }
  | Deploy of {
      prefix : string;
      query : Axml_query.Ast.t;
      reply : reply_dest;
    }
  | Query_shipped of { key : int; query : Axml_query.Ast.t }
  | Ack of { seq : int }

type t = { payload : payload; corr : int; seq : int }

let make ?(corr = 0) ?(seq = 0) payload = { payload; corr; seq }

let envelope = 64
(* Headers, addressing, framing.  The correlation id travels inside
   this budget — it does not change the charged size, so traced and
   untraced runs ship identical byte counts. *)

let bytes = function
  | Stream { forest; _ } -> envelope + Forest.byte_size forest
  | Eval_request { expr; _ } -> envelope + Axml_algebra.Expr_xml.byte_size expr
  | Invoke { params; _ } ->
      envelope
      + List.fold_left (fun acc f -> acc + Forest.byte_size f) 0 params
  | Insert { forest; _ } | Install_doc { forest; _ } ->
      envelope + Forest.byte_size forest
  | Deploy { query; _ } | Query_shipped { query; _ } ->
      envelope + String.length (Axml_query.Ast.to_string query)
  | Ack _ -> envelope

let reply_peer = function
  | Cont { peer; _ } -> peer
  | Node r -> r.Names.Node_ref.peer
  | Install { peer; _ } -> peer

let tag = function
  | Stream _ -> "stream"
  | Eval_request _ -> "eval-request"
  | Invoke _ -> "invoke"
  | Insert _ -> "insert"
  | Install_doc _ -> "install-doc"
  | Deploy _ -> "deploy"
  | Query_shipped _ -> "query-shipped"
  | Ack _ -> "ack"

let pp fmt = function
  | Stream { key; forest; final } ->
      Format.fprintf fmt "stream[%d] %dB%s" key (Forest.byte_size forest)
        (if final then " (final)" else "")
  | Eval_request { expr; _ } ->
      Format.fprintf fmt "eval-request %a" Axml_algebra.Expr.pp expr
  | Invoke { service; params; _ } ->
      Format.fprintf fmt "invoke %a/%d" Names.Service_name.pp service
        (List.length params)
  | Insert { node; forest; _ } ->
      Format.fprintf fmt "insert %dB under %a" (Forest.byte_size forest)
        Axml_xml.Node_id.pp node
  | Install_doc { name; forest; _ } ->
      Format.fprintf fmt "install %s (%dB)" name (Forest.byte_size forest)
  | Deploy { prefix; _ } -> Format.fprintf fmt "deploy %s_*" prefix
  | Query_shipped { key; _ } -> Format.fprintf fmt "query-shipped[%d]" key
  | Ack { seq } -> Format.fprintf fmt "ack[%d]" seq
