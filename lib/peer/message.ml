module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names
module Forest = Axml_xml.Forest

type reply_dest =
  | Cont of { peer : Peer_id.t; key : int }
  | Node of Names.Node_ref.t
  | Install of { peer : Peer_id.t; name : string }

type payload =
  | Stream of { key : int; forest : Forest.t; final : bool }
  | Eval_request of {
      expr : Axml_algebra.Expr.t;
      replies : reply_dest list;
      ack : (Peer_id.t * int) option;
    }
  | Invoke of {
      service : Names.Service_name.t;
      params : Forest.t list;
      replies : reply_dest list;
    }
  | Insert of {
      node : Axml_xml.Node_id.t;
      forest : Forest.t;
      notify : (Peer_id.t * int) option;
    }
  | Install_doc of {
      name : string;
      forest : Forest.t;
      notify : (Peer_id.t * int) option;
    }
  | Deploy of {
      prefix : string;
      query : Axml_query.Ast.t;
      reply : reply_dest;
    }
  | Query_shipped of { key : int; query : Axml_query.Ast.t }
  | Ack of { seq : int }
  | Batch of { items : batch_item list; ack : int }

and batch_item =
  | Full of t
  | Shared of { msg : t; of_seq : int; saved : int }

and t = { payload : payload; corr : int; seq : int; op : int }

let make ?(corr = 0) ?(seq = 0) ?(op = -1) payload = { payload; corr; seq; op }

let envelope = 64
(* Headers, addressing, framing.  The correlation id and the
   profiler's plan-operator id travel inside this budget — they do
   not change the charged size, so traced, profiled and plain runs
   ship identical byte counts. *)

let item_header = 16
(* Per-item framing inside a batch: sequence number, payload kind and
   length prefix — much smaller than a full envelope, which is where
   batching's fixed-cost saving comes from. *)

let backref_bytes = 4
(* A dedup back-reference: "same forest as item #n of this batch". *)

let rec bytes = function
  | Stream { forest; _ } -> envelope + Forest.byte_size forest
  | Eval_request { expr; _ } -> envelope + Axml_algebra.Expr_xml.byte_size expr
  | Invoke { params; _ } ->
      envelope
      + List.fold_left (fun acc f -> acc + Forest.byte_size f) 0 params
  | Insert { forest; _ } | Install_doc { forest; _ } ->
      envelope + Forest.byte_size forest
  | Deploy { query; _ } | Query_shipped { query; _ } ->
      envelope + String.length (Axml_query.Ast.to_string query)
  | Ack _ -> envelope
  | Batch { items; _ } ->
      List.fold_left
        (fun acc -> function
          | Full m -> acc + item_header + (bytes m.payload - envelope)
          | Shared { msg; saved; _ } ->
              acc + item_header + (bytes msg.payload - envelope) - saved
              + backref_bytes)
        envelope items

(* The forest a payload materializes at the destination — the only
   part of a message bulky enough to be worth sharing inside a batch
   (rule (13), transfer sharing, applied at the transport layer). *)
let shareable_forest = function
  | Stream { forest; _ } | Insert { forest; _ } | Install_doc { forest; _ } ->
      if forest = [] then None else Some forest
  | Eval_request _ | Invoke _ | Deploy _ | Query_shipped _ | Ack _ | Batch _ ->
      None

let batch ~ack msgs =
  let seen = Hashtbl.create 8 in
  let items =
    List.map
      (fun (m : t) ->
        match shareable_forest m.payload with
        | None -> Full m
        | Some forest -> (
            let key = Axml_xml.Serializer.forest_to_string forest in
            match Hashtbl.find_opt seen key with
            | Some of_seq ->
                Shared { msg = m; of_seq; saved = Forest.byte_size forest }
            | None ->
                Hashtbl.add seen key m.seq;
                Full m))
      msgs
  in
  Batch { items; ack }

let item_message = function Full m -> m | Shared { msg; _ } -> msg

let batch_saved = function
  | Batch { items; _ } ->
      List.fold_left
        (fun acc -> function Full _ -> acc | Shared { saved; _ } -> acc + saved)
        0 items
  | _ -> 0

let batch_size = function
  | Batch { items; _ } -> List.length items
  | _ -> 1

let reply_peer = function
  | Cont { peer; _ } -> peer
  | Node r -> r.Names.Node_ref.peer
  | Install { peer; _ } -> peer

let tag = function
  | Stream _ -> "stream"
  | Eval_request _ -> "eval-request"
  | Invoke _ -> "invoke"
  | Insert _ -> "insert"
  | Install_doc _ -> "install-doc"
  | Deploy _ -> "deploy"
  | Query_shipped _ -> "query-shipped"
  | Ack _ -> "ack"
  | Batch _ -> "batch"

let rec pp fmt = function
  | Stream { key; forest; final } ->
      Format.fprintf fmt "stream[%d] %dB%s" key (Forest.byte_size forest)
        (if final then " (final)" else "")
  | Eval_request { expr; _ } ->
      Format.fprintf fmt "eval-request %a" Axml_algebra.Expr.pp expr
  | Invoke { service; params; _ } ->
      Format.fprintf fmt "invoke %a/%d" Names.Service_name.pp service
        (List.length params)
  | Insert { node; forest; _ } ->
      Format.fprintf fmt "insert %dB under %a" (Forest.byte_size forest)
        Axml_xml.Node_id.pp node
  | Install_doc { name; forest; _ } ->
      Format.fprintf fmt "install %s (%dB)" name (Forest.byte_size forest)
  | Deploy { prefix; _ } -> Format.fprintf fmt "deploy %s_*" prefix
  | Query_shipped { key; _ } -> Format.fprintf fmt "query-shipped[%d]" key
  | Ack { seq } -> Format.fprintf fmt "ack[%d]" seq
  | Batch { items; ack } as b ->
      Format.fprintf fmt "batch(%d item%s, ack %d, %dB" (List.length items)
        (if List.length items = 1 then "" else "s")
        ack (bytes b);
      (match batch_saved b with
      | 0 -> ()
      | saved -> Format.fprintf fmt ", %dB shared" saved);
      Format.fprintf fmt "): ";
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
        (fun fmt item ->
          let m = item_message item in
          Format.fprintf fmt "#%d %a" m.seq pp m.payload)
        fmt items
