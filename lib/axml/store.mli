(** Per-peer document store.

    Holds the documents of one peer, keyed by name ("no two documents
    can agree on the values of (d, p)", Section 2.1).  The store is
    mutable — it is the piece of system state Σ owned by a peer.

    When {!Axml_obs.Timeseries} telemetry is enabled, the store feeds
    per-document load series: [doc/<name>/reads] counts one per
    {!find} hit, [doc/<name>/write_bytes] accumulates the bytes of
    {!install} and {!insert_under} — the demand signals a placement
    controller would watch.  Disabled, each site costs one boolean
    load. *)

type t

val create : unit -> t

val add : t -> Document.t -> unit
(** @raise Invalid_argument if the name is taken (the paper requires
    installing under "a name d not previously in use"). *)

val install : t -> name:string -> Axml_xml.Tree.t -> Names.Doc_name.t
(** Install a tree under [name]; if taken, derive a fresh name by
    numeric suffix and return it (used by [send(d\@p2, t\@p1)]
    evaluation when racing installs occur). *)

val find : t -> Names.Doc_name.t -> Document.t option
val find_by_string : t -> string -> Document.t option

val peek : t -> Names.Doc_name.t -> Document.t option
(** Like {!find} but without recording a [doc/<n>/reads] event — for
    the runtime's own machinery (replica shipping, retraction,
    fingerprints), whose lookups are not query load and must not feed
    the placement controller's signals. *)

val peek_by_string : t -> string -> Document.t option
val mem : t -> Names.Doc_name.t -> bool
val remove : t -> Names.Doc_name.t -> unit
val update : t -> Document.t -> unit
(** Replace the stored document of the same name.
    @raise Not_found if absent. *)

(** {1 Version stamps}

    Every mutation re-stamps the document from one process-global
    monotonic counter: [add], [install], [update], [update_root] and
    [insert_under] bump; [remove] clears the stamp ([version_of] goes
    [None]).  Stamps are never reused, so a consumer that pinned
    [(d, v)] can detect {e any} later state — including a
    crash-restart reload of identical content, which re-adds the
    document and draws a fresh stamp.  This is the invalidation signal
    of the {!Axml_query.Qcache} semantic cache. *)

val version_of : t -> Names.Doc_name.t -> int option
(** The current version stamp; [None] if the document is absent. *)

val set_on_mutate : t -> (Names.Doc_name.t -> unit) -> unit
(** Install a hook called (with the document name) after every
    mutation, including {!remove}.  One hook per store; installing
    replaces the previous one.  Telemetry-quiet reads ({!peek}) never
    fire it. *)

val names : t -> Names.Doc_name.t list
val documents : t -> Document.t list
val total_bytes : t -> int

val update_root :
  t -> Names.Doc_name.t -> (Axml_xml.Tree.t -> Axml_xml.Tree.t) -> bool
(** Apply a root transformation in place; [false] if absent. *)

(** {1 Structural indexes}

    Every document can carry a structural index
    ({!Axml_xml.Index}); it is built lazily on first demand and
    invalidated by any mutation it cannot absorb incrementally
    ({!update}, {!update_root}, {!remove}).  {!insert_under} — the
    continuous-query append path — is absorbed in O(subtree). *)

val index_of : t -> Names.Doc_name.t -> Axml_xml.Index.t option
(** The document's index, building and caching it if needed;
    [None] if the document is absent. *)

val stats_of :
  t -> Names.Doc_name.t -> Axml_query.Selectivity.Stats.t option
(** Exact per-label statistics from the document's index (for the
    planner's cost model). *)

val insert_under :
  t ->
  Names.Doc_name.t ->
  node:Axml_xml.Node_id.t ->
  Axml_xml.Forest.t ->
  Document.t option
(** [insert_under t name ~node forest] appends [forest] under [node]
    (as {!Document.insert_under}), stores the updated document and
    maintains its index incrementally rather than dropping it.
    [None] if the document or target node is absent. *)
