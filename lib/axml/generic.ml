module Peer_id = Axml_net.Peer_id

type policy =
  | First
  | Random of int
  | Nearest of {
      from : Peer_id.t;
      topology : Axml_net.Topology.t;
      probe_bytes : int;
    }
  | Least_loaded of (Peer_id.t -> float)

type t = {
  docs : (string, Names.Doc_ref.t list ref) Hashtbl.t;
  services : (string, Names.Service_ref.t list ref) Hashtbl.t;
}

let create () = { docs = Hashtbl.create 16; services = Hashtbl.create 16 }

let register tbl ~class_name member ~equal =
  let cell =
    match Hashtbl.find_opt tbl class_name with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace tbl class_name c;
        c
  in
  if not (List.exists (equal member) !cell) then cell := !cell @ [ member ]

let register_doc t ~class_name (r : Names.Doc_ref.t) =
  (match r.at with
  | Names.Any -> invalid_arg "Generic.register_doc: member location is Any"
  | Names.At _ -> ());
  register t.docs ~class_name r ~equal:Names.Doc_ref.equal

let register_service t ~class_name (r : Names.Service_ref.t) =
  (match r.at with
  | Names.Any -> invalid_arg "Generic.register_service: member location is Any"
  | Names.At _ -> ());
  register t.services ~class_name r ~equal:Names.Service_ref.equal

let members tbl ~class_name =
  match Hashtbl.find_opt tbl class_name with Some c -> !c | None -> []

let doc_members t = members t.docs
let service_members t = members t.services

(* A deterministic pseudo-random index: hash of seed and class size,
   good enough for load spreading without global state. *)
let pseudo_random seed n = if n = 0 then 0 else abs (Hashtbl.hash (seed, n)) mod n

let peer_of_location = function Names.At p -> Some p | Names.Any -> None

let choose ~policy ~location ~compare_ref members =
  match members with
  | [] -> None
  | members -> (
      match policy with
      | First -> Some (List.hd (List.sort compare_ref members))
      | Random seed ->
          Some (List.nth members (pseudo_random seed (List.length members)))
      | Nearest { from; topology; probe_bytes } ->
          let cost r =
            match peer_of_location (location r) with
            | None -> infinity
            | Some dst -> (
                match Axml_net.Topology.link topology ~src:from ~dst with
                | link -> Axml_net.Link.transfer_ms link ~bytes:probe_bytes
                | exception Not_found -> infinity)
          in
          let best =
            List.fold_left
              (fun acc r ->
                match acc with
                | None -> Some (r, cost r)
                | Some (_, c) when cost r < c -> Some (r, cost r)
                | Some _ -> acc)
              None members
          in
          Option.map fst best
      | Least_loaded gauge ->
          let load r =
            match peer_of_location (location r) with
            | None -> infinity
            | Some p -> gauge p
          in
          let best =
            List.fold_left
              (fun acc r ->
                match acc with
                | None -> Some (r, load r)
                | Some (_, c) when load r < c -> Some (r, load r)
                | Some _ -> acc)
              None members
          in
          Option.map fst best)

(* Members on crashed or partitioned peers are filtered out before the
   policy chooses — this is what lets d@any / s@any degrade gracefully
   under faults instead of routing calls into a black hole.  With no
   [available] oracle every member qualifies. *)
let usable ~available ~location members =
  match available with
  | None -> members
  | Some live ->
      List.filter
        (fun r ->
          match peer_of_location (location r) with
          | Some p -> live p
          | None -> true)
        members

let pick_doc ?available t ~policy ~class_name =
  let location (r : Names.Doc_ref.t) = r.at in
  choose ~policy ~location ~compare_ref:Names.Doc_ref.compare
    (usable ~available ~location (doc_members t ~class_name))

let pick_service ?available t ~policy ~class_name =
  let location (r : Names.Service_ref.t) = r.at in
  choose ~policy ~location ~compare_ref:Names.Service_ref.compare
    (usable ~available ~location (service_members t ~class_name))

let classes t =
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort_uniq String.compare (keys t.docs @ keys t.services)
