module Peer_id = Axml_net.Peer_id

type policy =
  | First
  | Random of int
  | Nearest of {
      from : Peer_id.t;
      topology : Axml_net.Topology.t;
      probe_bytes : int;
    }
  | Least_loaded of (Peer_id.t -> float)
  | Load_steered of { seed : int; gauge : Peer_id.t -> float option }

type t = {
  docs : (string, Names.Doc_ref.t list ref) Hashtbl.t;
  services : (string, Names.Service_ref.t list ref) Hashtbl.t;
}

let create () = { docs = Hashtbl.create 16; services = Hashtbl.create 16 }

let register tbl ~class_name member ~equal =
  let cell =
    match Hashtbl.find_opt tbl class_name with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace tbl class_name c;
        c
  in
  if not (List.exists (equal member) !cell) then cell := !cell @ [ member ]

let unregister tbl ~class_name member ~equal =
  match Hashtbl.find_opt tbl class_name with
  | None -> ()
  | Some cell -> cell := List.filter (fun r -> not (equal member r)) !cell

let register_doc t ~class_name (r : Names.Doc_ref.t) =
  (match r.at with
  | Names.Any -> invalid_arg "Generic.register_doc: member location is Any"
  | Names.At _ -> ());
  register t.docs ~class_name r ~equal:Names.Doc_ref.equal

let register_service t ~class_name (r : Names.Service_ref.t) =
  (match r.at with
  | Names.Any -> invalid_arg "Generic.register_service: member location is Any"
  | Names.At _ -> ());
  register t.services ~class_name r ~equal:Names.Service_ref.equal

let unregister_doc t ~class_name (r : Names.Doc_ref.t) =
  unregister t.docs ~class_name r ~equal:Names.Doc_ref.equal

let unregister_service t ~class_name (r : Names.Service_ref.t) =
  unregister t.services ~class_name r ~equal:Names.Service_ref.equal

let members tbl ~class_name =
  match Hashtbl.find_opt tbl class_name with Some c -> !c | None -> []

let doc_members t = members t.docs
let service_members t = members t.services

(* A deterministic pseudo-random index: hash of seed and class size,
   good enough for load spreading without global state. *)
let pseudo_random seed n = if n = 0 then 0 else abs (Hashtbl.hash (seed, n)) mod n

let peer_of_location = function Names.At p -> Some p | Names.Any -> None

let choose ~policy ~location ~compare_ref members =
  match members with
  | [] -> None
  | members -> (
      match policy with
      | First -> Some (List.hd (List.sort compare_ref members))
      | Random seed ->
          Some (List.nth members (pseudo_random seed (List.length members)))
      | Nearest { from; topology; probe_bytes } ->
          let cost r =
            match peer_of_location (location r) with
            | None -> infinity
            | Some dst -> (
                match Axml_net.Topology.link topology ~src:from ~dst with
                | link -> Axml_net.Link.transfer_ms link ~bytes:probe_bytes
                | exception Not_found -> infinity)
          in
          let best =
            List.fold_left
              (fun acc r ->
                match acc with
                | None -> Some (r, cost r)
                | Some (_, c) when cost r < c -> Some (r, cost r)
                | Some _ -> acc)
              None members
          in
          Option.map fst best
      | Least_loaded gauge ->
          let load r =
            match peer_of_location (location r) with
            | None -> infinity
            | Some p -> gauge p
          in
          let best =
            List.fold_left
              (fun acc r ->
                match acc with
                | None -> Some (r, load r)
                | Some (_, c) when load r < c -> Some (r, load r)
                | Some _ -> acc)
              None members
          in
          Option.map fst best
      | Load_steered { seed; gauge } ->
          (* An option-returning gauge separates "no signal" from "zero
             load": telemetry disabled, no complete window yet, or a
             NaN/inf score all yield [None].  Members with a signal are
             ranked by it; exact ties (e.g. everyone idle at 0.0) are
             broken by the stateless [Random] rule, which also serves
             as the fallback when {e no} member has a signal — the
             policy degrades to seeded load spreading instead of
             poisoning the ranking with NaNs. *)
          let score r =
            match peer_of_location (location r) with
            | None -> None
            | Some p -> (
                match gauge p with
                | Some v when Float.is_finite v -> Some v
                | _ -> None)
          in
          let scored = List.map (fun r -> (r, score r)) members in
          let best =
            List.fold_left
              (fun acc (_, s) ->
                match (acc, s) with
                | None, Some v -> Some v
                | Some b, Some v when v < b -> Some v
                | _ -> acc)
              None scored
          in
          (match best with
          | None ->
              Some (List.nth members (pseudo_random seed (List.length members)))
          | Some b ->
              let tied =
                List.filter_map
                  (fun (r, s) -> if s = Some b then Some r else None)
                  scored
              in
              Some (List.nth tied (pseudo_random seed (List.length tied)))))

(* Members on crashed or partitioned peers are filtered out before the
   policy chooses — this is what lets d@any / s@any degrade gracefully
   under faults instead of routing calls into a black hole.  With no
   [available] oracle every member qualifies. *)
let usable ~available ~location members =
  match available with
  | None -> members
  | Some live ->
      List.filter
        (fun r ->
          match peer_of_location (location r) with
          | Some p -> live p
          | None -> true)
        members

(* [Random] resolution is the per-request hot path of generic calls:
   walk the member list twice (count the usable ones, then select the
   i-th) instead of materialising the filtered list and [List.nth]-ing
   into it.  Picks exactly the member the list-based path would — the
   i-th usable member in registration order — with zero allocation. *)
let pick ~available ~policy ~location ~compare_ref members =
  match policy with
  | Random seed ->
      let ok r =
        match available with
        | None -> true
        | Some live -> (
            match peer_of_location (location r) with
            | Some p -> live p
            | None -> true)
      in
      let n = List.fold_left (fun acc r -> if ok r then acc + 1 else acc) 0 members in
      if n = 0 then None
      else
        let rec nth_usable k = function
          | [] -> None
          | r :: rest ->
              if ok r then if k = 0 then Some r else nth_usable (k - 1) rest
              else nth_usable k rest
        in
        nth_usable (pseudo_random seed n) members
  | First | Nearest _ | Least_loaded _ | Load_steered _ ->
      choose ~policy ~location ~compare_ref (usable ~available ~location members)

let pick_doc ?available t ~policy ~class_name =
  let location (r : Names.Doc_ref.t) = r.at in
  pick ~available ~policy ~location ~compare_ref:Names.Doc_ref.compare
    (doc_members t ~class_name)

let pick_service ?available t ~policy ~class_name =
  let location (r : Names.Service_ref.t) = r.at in
  pick ~available ~policy ~location ~compare_ref:Names.Service_ref.compare
    (service_members t ~class_name)

let classes t =
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort_uniq String.compare (keys t.docs @ keys t.services)
