(** Generic documents and services (Section 2.3, definition (9)).

    A generic document ed\@any denotes any member of an equivalence
    class of regular documents; similarly for services.  A {!catalog}
    records class memberships; [pick_doc] / [pick_service] implement
    the paper's pickDoc/pickService functions under a configurable
    {!policy} ("the implementation of an actual pick function at p
    depends on p's knowledge of the existing documents and services,
    p's preferences etc."). *)

type policy =
  | First  (** Deterministic: smallest member in reference order. *)
  | Random of int  (** Pseudo-random with the given seed. *)
  | Nearest of {
      from : Axml_net.Peer_id.t;
      topology : Axml_net.Topology.t;
      probe_bytes : int;
    }
      (** Cheapest link from [from] for a transfer of [probe_bytes]. *)
  | Least_loaded of (Axml_net.Peer_id.t -> float)
      (** Smallest load according to the supplied gauge. *)
  | Load_steered of {
      seed : int;
      gauge : Axml_net.Peer_id.t -> float option;
    }
      (** Like {!Least_loaded} but fed by an optional, windowed load
          signal (see [Placement.load_gauge]): [None] — telemetry
          disabled, no complete window, or a non-finite reading —
          never poisons the ranking.  Exact ties and the all-[None]
          case fall back to the seeded {!Random} rule. *)

type t
(** The catalog: class name → members.  Documents and services live in
    separate namespaces. *)

val create : unit -> t

val register_doc : t -> class_name:string -> Names.Doc_ref.t -> unit
(** Add a member to a document class.
    @raise Invalid_argument if the member's location is {!Names.Any}. *)

val register_service : t -> class_name:string -> Names.Service_ref.t -> unit

val unregister_doc : t -> class_name:string -> Names.Doc_ref.t -> unit
(** Retire a member from a document class (no-op if absent).  The
    class itself remains, possibly empty — a later {!register_doc}
    re-populates it. *)

val unregister_service : t -> class_name:string -> Names.Service_ref.t -> unit

val doc_members : t -> class_name:string -> Names.Doc_ref.t list
val service_members : t -> class_name:string -> Names.Service_ref.t list

val pick_doc :
  ?available:(Axml_net.Peer_id.t -> bool) ->
  t ->
  policy:policy ->
  class_name:string ->
  Names.Doc_ref.t option
(** Resolve d\@any to a concrete d\@p, [None] for unknown or empty
    classes.  [available] filters members before the policy chooses:
    a member whose peer is crashed or partitioned away is skipped, so
    generic calls degrade gracefully instead of hanging (the class's
    availability story, Section 2.2). *)

val pick_service :
  ?available:(Axml_net.Peer_id.t -> bool) ->
  t ->
  policy:policy ->
  class_name:string ->
  Names.Service_ref.t option

val classes : t -> string list
