module Signature = Axml_schema.Signature

type impl =
  | Declarative of Axml_query.Ast.t
  | Extern of (Axml_xml.Forest.t list -> Axml_xml.Forest.t)
  | Doc_feed of Names.Doc_name.t

type t = {
  name : Names.Service_name.t;
  signature : Signature.t;
  continuous : bool;
  impl : impl;
}

let declarative ?signature ?(continuous = true) ~name q =
  (match Axml_query.Ast.check q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Service.declarative: " ^ msg));
  let arity = Axml_query.Ast.arity q in
  let signature =
    match signature with
    | Some s ->
        if Signature.arity s <> arity then
          invalid_arg
            (Printf.sprintf
               "Service.declarative: signature arity %d but query arity %d"
               (Signature.arity s) arity);
        s
    | None -> Signature.untyped ~arity
  in
  {
    name = Names.Service_name.of_string name;
    signature;
    continuous;
    impl = Declarative q;
  }

let extern ?(continuous = true) ~name ~signature f =
  {
    name = Names.Service_name.of_string name;
    signature;
    continuous;
    impl = Extern f;
  }

let doc_feed ~name ~doc =
  {
    name = Names.Service_name.of_string name;
    signature = Signature.untyped ~arity:0;
    continuous = true;
    impl = Doc_feed (Names.Doc_name.of_string doc);
  }

let name s = s.name
let signature s = s.signature
let arity s = Signature.arity s.signature
let continuous s = s.continuous
let impl s = s.impl

let query s =
  match s.impl with Declarative q -> Some q | Extern _ | Doc_feed _ -> None

let is_declarative s =
  match s.impl with Declarative _ -> true | Extern _ | Doc_feed _ -> false

let apply ~gen s inputs =
  if List.length inputs <> arity s then
    invalid_arg
      (Printf.sprintf "Service.apply: %s expects %d inputs, got %d"
         (Names.Service_name.to_string s.name)
         (arity s) (List.length inputs));
  match s.impl with
  | Declarative q -> Axml_query.Compile.eval ~gen q inputs
  | Extern f -> f inputs
  | Doc_feed d ->
      invalid_arg
        (Printf.sprintf
           "Service.apply: %s is a feed over document %s; only a peer \
            runtime can evaluate it"
           (Names.Service_name.to_string s.name)
           (Names.Doc_name.to_string d))

let pp fmt s =
  Format.fprintf fmt "service %a : %a%s%s" Names.Service_name.pp s.name
    Signature.pp s.signature
    (if s.continuous then " (continuous)" else "")
    (match s.impl with
    | Declarative _ -> " [declarative]"
    | Extern _ -> " [extern]"
    | Doc_feed d -> Printf.sprintf " [feed %s]" (Names.Doc_name.to_string d))
