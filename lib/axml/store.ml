module Index = Axml_xml.Index
module Timeseries = Axml_obs.Timeseries

type t = {
  docs : (Names.Doc_name.t, Document.t) Hashtbl.t;
  indexes : (Names.Doc_name.t, Index.t) Hashtbl.t;
      (* Lazily built, dropped on any mutation the index can't absorb
         incrementally; [index_of] rebuilds on demand. *)
  series : (Names.Doc_name.t, Timeseries.handle * Timeseries.handle) Hashtbl.t;
      (* Per-document load series ([doc/<name>/reads],
         [doc/<name>/write_bytes]), bound lazily so stores created
         with telemetry off pay nothing. *)
  versions : (Names.Doc_name.t, int) Hashtbl.t;
      (* Per-document version stamps — see [next_stamp]. *)
  mutable on_mutate : Names.Doc_name.t -> unit;
}

(* Version stamps are drawn from one process-global monotonic counter,
   not per-document counters: a semantic-cache entry pinned to stamp v
   must never revalidate against a coincidentally equal stamp of a
   different document state.  In particular a crash-restart reload
   re-adds documents and receives fresh stamps, so entries computed
   before the crash can never be served against checkpoint-restored
   content. *)
let stamp = ref 0

let next_stamp () =
  incr stamp;
  !stamp

let create () =
  {
    docs = Hashtbl.create 16;
    indexes = Hashtbl.create 16;
    series = Hashtbl.create 16;
    versions = Hashtbl.create 16;
    on_mutate = ignore;
  }

let bump t name =
  Hashtbl.replace t.versions name (next_stamp ());
  t.on_mutate name

let version_of t name = Hashtbl.find_opt t.versions name
let set_on_mutate t f = t.on_mutate <- f

(* Per-document load accounting: lookups and written bytes, windowed
   by {!Axml_obs.Timeseries} under the simulator's clock — the demand
   signal a placement controller would watch to decide replication or
   migration.  All sites guard on [Timeseries.is_on]: disabled, the
   cost is one boolean load. *)
let doc_series t name =
  match Hashtbl.find_opt t.series name with
  | Some hs -> hs
  | None ->
      let n = Names.Doc_name.to_string name in
      let hs =
        ( Timeseries.handle Timeseries.default ("doc/" ^ n ^ "/reads"),
          Timeseries.handle Timeseries.default ("doc/" ^ n ^ "/write_bytes") )
      in
      Hashtbl.replace t.series name hs;
      hs

let note_read t name =
  if Timeseries.is_on Timeseries.default then begin
    let reads, _ = doc_series t name in
    Timeseries.record reads 1.0
  end

let note_write t name bytes =
  if bytes > 0 && Timeseries.is_on Timeseries.default then begin
    let _, writes = doc_series t name in
    Timeseries.record writes (float_of_int bytes)
  end
let invalidate t name = Hashtbl.remove t.indexes name

let add t doc =
  let name = Document.name doc in
  if Hashtbl.mem t.docs name then
    invalid_arg
      (Printf.sprintf "Store.add: document %S already exists"
         (Names.Doc_name.to_string name))
  else begin
    Hashtbl.replace t.docs name doc;
    bump t name
  end

let install t ~name root =
  let rec pick candidate i =
    let dn = Names.Doc_name.of_string candidate in
    if Hashtbl.mem t.docs dn then pick (Printf.sprintf "%s_%d" name i) (i + 1)
    else dn
  in
  let dn = pick name 1 in
  let doc = Document.make ~name:(Names.Doc_name.to_string dn) root in
  Hashtbl.replace t.docs dn doc;
  bump t dn;
  note_write t dn (Document.byte_size doc);
  dn

let find t name =
  match Hashtbl.find_opt t.docs name with
  | None -> None
  | Some doc ->
      note_read t name;
      Some doc

let find_by_string t s =
  match Names.Doc_name.of_string_opt s with
  | None -> None
  | Some n -> find t n

(* Telemetry-quiet lookups for the runtime's own machinery (replica
   shipping, retraction, fingerprints).  Internal reads must not feed
   the doc/<n>/reads signal: the placement controller would observe
   its own bookkeeping as query load and re-heat the documents it
   just moved. *)
let peek t name = Hashtbl.find_opt t.docs name

let peek_by_string t s =
  match Names.Doc_name.of_string_opt s with
  | None -> None
  | Some n -> peek t n

let mem t name = Hashtbl.mem t.docs name

let remove t name =
  let existed = Hashtbl.mem t.docs name in
  Hashtbl.remove t.docs name;
  Hashtbl.remove t.versions name;
  invalidate t name;
  (* No stamp to record for an absent document — [version_of] goes
     [None], which every cache probe treats as stale — but the mutation
     hook must still fire for eager invalidation. *)
  if existed then t.on_mutate name

let update t doc =
  let name = Document.name doc in
  if not (Hashtbl.mem t.docs name) then raise Not_found;
  Hashtbl.replace t.docs name doc;
  bump t name;
  invalidate t name

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.docs []
  |> List.sort Names.Doc_name.compare

let documents t = List.filter_map (find t) (names t)

let total_bytes t =
  Hashtbl.fold (fun _ d acc -> acc + Document.byte_size d) t.docs 0

let update_root t name f =
  match Hashtbl.find_opt t.docs name with
  | None -> false
  | Some doc ->
      Hashtbl.replace t.docs name (Document.with_root doc (f (Document.root doc)));
      bump t name;
      invalidate t name;
      true

let index_of t name =
  match Hashtbl.find_opt t.indexes name with
  | Some ix -> Some ix
  | None -> (
      match Hashtbl.find_opt t.docs name with
      | None -> None
      | Some doc ->
          let ix = Index.build (Document.root doc) in
          Hashtbl.replace t.indexes name ix;
          Some ix)

let stats_of t name =
  Option.map Axml_query.Selectivity.Stats.of_index (index_of t name)

let insert_under t name ~node forest =
  match Hashtbl.find_opt t.docs name with
  | None -> None
  | Some doc -> (
      match Document.insert_under ~node forest doc with
      | None -> None
      | Some doc' ->
          Hashtbl.replace t.docs name doc';
          bump t name;
          note_write t name (Axml_xml.Forest.byte_size forest);
          (match Hashtbl.find_opt t.indexes name with
          | None -> ()
          | Some ix ->
              (* The appended forest is physically shared between the
                 new root and [forest] (Tree.insert_children), so the
                 index absorbs it as a segment in O(subtree).  When
                 the append can't be taken (id reuse, unusable index)
                 or the appended volume caught up with the base,
                 drop the index — the next [index_of] rebuild is the
                 geometric compaction step. *)
              if
                not
                  (Index.append ix ~new_root:(Document.root doc') ~under:node
                     forest)
                || Index.needs_compaction ix
              then invalidate t name);
          Some doc')
