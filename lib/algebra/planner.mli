(** The unified cost-based planner.

    One pipeline over the two optimization layers the codebase grew
    separately:

    + {e distributed} rewriting — {!Optimizer.optimize} searches the
      closure of the equivalence rules (10)–(16) for the cheapest
      placement of work across peers;
    + {e site-local} query optimization — every query the chosen plan
      evaluates at a single peer (the [q] of each [Query_app], however
      deeply shipped through [send]s) is then rewritten by
      {!Axml_query.Optimize.optimize}: predicate simplification and
      selectivity-aware binding reordering, which change enumeration
      cost but never results.

    The result carries the final plan, the combined cost picture and a
    machine-readable explain record ({!explain_json}) — what
    [axmlctl explain] and the E15 benchmark print. *)

type result = {
  plan : Expr.t;  (** Final plan: best rewrite, queries optimized. *)
  cost : Cost.t;  (** Estimated cost of {!field:plan}. *)
  search : Optimizer.result;
      (** The distributed-search layer's outcome (initial cost, best
          rewritten plan before query optimization, trace, explored
          and expansion counts). *)
  queries_optimized : int;
      (** Embedded queries changed by the site-local pass. *)
  equal_calls : int;
      (** {!Expr.equal} invocations the search paid for — the
          planner's visited-set ablation metric. *)
  strategy : string;  (** {!Optimizer.strategy_name} of the search. *)
}

val plan :
  env:Cost.env ->
  ctx:Expr.Peer_id.t ->
  ?objective:(Cost.t -> float) ->
  ?visited:Optimizer.visited_impl ->
  ?peers:Expr.Peer_id.t list ->
  ?stats:Axml_query.Selectivity.Stats.t list ->
  Optimizer.strategy ->
  Expr.t ->
  result
(** Run both layers.  [stats], when given, feeds the selectivity
    oracle of the binding-reordering pass. *)

val optimize_queries :
  ?stats:Axml_query.Selectivity.Stats.t list -> Expr.t -> Expr.t * int
(** The site-local layer alone: rewrite every embedded query with
    {!Axml_query.Optimize.optimize}; returns the rewritten expression
    and how many queries changed. *)

val pp_result : Format.formatter -> result -> unit
(** Human-oriented explain: costs, trace, plan. *)

val explain_json : result -> string
(** The same record as a self-contained JSON object: initial/best/final
    cost (bytes, messages, latency), explored/expansion counts,
    [equal_calls], [queries_optimized], the rule trace, and the final
    plan's textual form. *)
