(** The expression language E of extended AXML computations
    (Section 3.1).

    Members of E:
    - trees and documents located at peers: t\@p, d\@p (and the generic
      d\@any);
    - query applications q\@p(e1, …, en);
    - data shipping: send(p2, e), send([n1\@p1, …], e),
      send(d\@p2, e);
    - query shipping: send(p2, q\@p1) — deploys q as a new service at
      p2 (definition (8));
    - service-call trees sc(provider, s, params, fwList);
    - evaluation-site delegation eval\@p(e) (rules (14), (15));
    - materialized sharing (the d\@p of rule (13)): evaluate once,
      install as a document, reference it from the body.

    An expression denotes a computation; {!module:Axml_peer.Exec}
    gives it the operational semantics of definitions (1)–(9), and
    {!module:Rewrite} transforms it under the equivalence rules
    (10)–(16). *)

module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names

(** Destination of a [send] (Section 3.1). *)
type dest =
  | To_peer of Peer_id.t
      (** send(p2, e): the value becomes available at p2. *)
  | To_nodes of Names.Node_ref.t list
      (** send([n\@p, …], e): append under each node, return ∅
          (definition (4)). *)
  | To_doc of Names.Doc_name.t * Peer_id.t
      (** send(d\@p2, e): install as a new document (Section 3.1). *)

(** An expression in query position: something that denotes a query
    value. *)
type query_expr =
  | Q_val of { q : Axml_query.Ast.t; at : Peer_id.t }
      (** q\@p: a query residing at p. *)
  | Q_service of Names.Service_ref.t
      (** The query implementing a declarative service (inspectable
          per Section 2.2). *)
  | Q_send of { dest : Peer_id.t; q : query_expr }
      (** send(p2, q): ship the query to p2 (definition (8)). *)

type t =
  | Data_at of { forest : Axml_xml.Forest.t; at : Peer_id.t }
      (** t\@p — literal data located at a peer.  A forest, because
          expression values are forests (streams of trees). *)
  | Doc of Names.Doc_ref.t
  | Query_app of { query : query_expr; args : t list; at : Peer_id.t }
      (** Apply [query] at peer [at] to the argument expressions. *)
  | Sc of { sc : Axml_doc.Sc.t; at : Peer_id.t }
      (** An sc-rooted tree located at [at] (definition (6)). *)
  | Send of { dest : dest; expr : t }
  | Eval_at of { at : Peer_id.t; expr : t }
      (** Delegate the evaluation of [expr] to peer [at]. *)
  | Shared of {
      name : Names.Doc_name.t;
      at : Peer_id.t;
      value : t;
      body : t;
    }
      (** Rule (13): evaluate [value], materialize it at [at] under
          [name]; [body] (which may reference Doc(name\@at)) starts
          only once the document is installed — the deliberate loss of
          parallelism the paper discusses. *)

(** {1 Constructors} *)

val tree_at : Axml_xml.Tree.t -> at:Peer_id.t -> t
val data_at : Axml_xml.Forest.t -> at:Peer_id.t -> t
val doc : string -> at:string -> t
val doc_any : string -> t
val query_at : Axml_query.Ast.t -> at:Peer_id.t -> args:t list -> t
val send_to_peer : Peer_id.t -> t -> t
val send_to_nodes : Names.Node_ref.t list -> t -> t
val send_as_doc : name:string -> at:Peer_id.t -> t -> t
val eval_at : Peer_id.t -> t -> t
val sc : Axml_doc.Sc.t -> at:Peer_id.t -> t
val shared : name:string -> at:Peer_id.t -> value:t -> body:t -> t

(** {1 Analysis} *)

val site : t -> Names.location
(** Where the expression's result materializes: [To_peer] sends land
    at their destination, side-effecting sends produce ∅ at the
    sender, data sits where it is.  {!Names.Any} for generic documents
    not yet resolved. *)

val query_site : query_expr -> Names.location

val peers : t -> Peer_id.t list
(** Every peer mentioned, without duplicates. *)

val subexpressions : t -> t list
(** Direct children in the expression tree. *)

val size : t -> int
(** Number of expression nodes. *)

val cache_deps : t -> (Peer_id.t * string) list option
(** [Some deps] if the expression is a deterministic, effect-free
    read whose result is a function of the listed documents alone —
    the condition for {!Axml_query.Qcache} admission.  [deps] is the
    sorted, de-duplicated list of [(peer, doc)] the expression reads;
    it is empty for pure literals.  [None] marks the uncacheable:
    [Sc]/[Send]/[Shared] (activations, shipping, materialization are
    effects), [Doc] at [any] (resolution reads catalog state),
    [Q_service]/[Q_send] query positions (registry state,
    deployment), and [Data_at] forests embedding sc-rooted trees
    (evaluation activates them, definition (6)). *)

val map_children : (t -> t) -> t -> t
(** Rebuild with rewritten direct children.  The function is applied
    to the children in {!subexpressions} order, so a stateful argument
    (e.g. a positional rebuild) may rely on the two traversals
    agreeing. *)

val equal : t -> t -> bool
(** Structural, modulo node identifiers inside embedded trees. *)

val equal_calls : unit -> int
(** Number of {!equal} invocations since program start.  Structural
    comparison is the inner loop of plan search; the planner
    benchmarks difference this counter to report how many comparisons
    a search strategy paid for. *)

(** {1 Fingerprints}

    A cheap structural summary used by the optimizer's visited set:
    candidate plans are bucketed by fingerprint, and the full
    {!equal} runs only against same-fingerprint bucket members
    (hash-collision fallback). *)

module Fingerprint : sig
  type t = {
    hash : int;  (** Structural hash, invariant under {!val:equal}. *)
    size : int;  (** Expression-node count (same as {!val:size}). *)
    depth : int;  (** Expression-tree depth. *)
  }

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

val fingerprint : t -> Fingerprint.t
(** One bottom-up pass; [equal a b] implies
    [Fingerprint.equal (fingerprint a) (fingerprint b)] — the hash
    looks through everything {!equal} ignores (node identifiers and
    sibling order in embedded forests, the order of forward lists). *)

val depth : t -> int
(** Depth of the expression tree (via {!fingerprint}). *)

val pp : Format.formatter -> t -> unit
(** Human-oriented notation close to the paper's, e.g.
    [send(p1, apply@p2(…))]. *)

val to_string : t -> string
