module Tree = Axml_xml.Tree
module Label = Axml_xml.Label
module Names = Axml_doc.Names
module Peer_id = Axml_net.Peer_id

let l = Label.of_string

(* Element labels of the encoding. *)
let l_tree = l "e-data"
let l_doc = l "e-doc"
let l_apply = l "e-apply"
let l_sc = l "e-sc"
let l_send = l "e-send"
let l_eval = l "e-eval"
let l_shared = l "e-share"
let l_value = l "value"
let l_body = l "body"
let l_q_val = l "q-val"
let l_q_service = l "q-service"
let l_q_send = l "q-send"
let l_args = l "args"

let rec to_tree ~gen (e : Expr.t) =
  match e with
  | Expr.Data_at { forest; at } ->
      Tree.element ~gen l_tree
        ~attrs:[ ("at", Peer_id.to_string at) ]
        (Axml_xml.Forest.copy ~gen forest)
  | Expr.Doc r ->
      Tree.element ~gen l_doc
        ~attrs:[ ("ref", Names.Doc_ref.to_string r) ]
        []
  | Expr.Query_app { query; args; at } ->
      Tree.element ~gen l_apply
        ~attrs:[ ("at", Peer_id.to_string at) ]
        (query_to_tree ~gen query
        :: [ Tree.element ~gen l_args (List.map (to_tree ~gen) args) ])
  | Expr.Sc { sc; at } ->
      Tree.element ~gen l_sc
        ~attrs:[ ("at", Peer_id.to_string at) ]
        [ Axml_doc.Sc.to_tree ~gen sc ]
  | Expr.Send { dest; expr } ->
      let dest_attrs =
        match dest with
        | Expr.To_peer p -> [ ("kind", "peer"); ("peer", Peer_id.to_string p) ]
        | Expr.To_nodes targets ->
            [
              ("kind", "nodes");
              ( "nodes",
                String.concat ";"
                  (List.map Names.Node_ref.to_string targets) );
            ]
        | Expr.To_doc (d, p) ->
            [
              ("kind", "doc");
              ("doc", Names.Doc_name.to_string d);
              ("peer", Peer_id.to_string p);
            ]
      in
      Tree.element ~gen l_send ~attrs:dest_attrs [ to_tree ~gen expr ]
  | Expr.Eval_at { at; expr } ->
      Tree.element ~gen l_eval
        ~attrs:[ ("at", Peer_id.to_string at) ]
        [ to_tree ~gen expr ]
  | Expr.Shared { name; at; value; body } ->
      Tree.element ~gen l_shared
        ~attrs:
          [ ("name", Names.Doc_name.to_string name);
            ("at", Peer_id.to_string at);
          ]
        [
          Tree.element ~gen l_value [ to_tree ~gen value ];
          Tree.element ~gen l_body [ to_tree ~gen body ];
        ]

and query_to_tree ~gen (q : Expr.query_expr) =
  match q with
  | Expr.Q_val { q; at } ->
      Tree.element ~gen l_q_val
        ~attrs:[ ("at", Peer_id.to_string at) ]
        [ Tree.text (Axml_query.Ast.to_string q) ]
  | Expr.Q_service r ->
      Tree.element ~gen l_q_service
        ~attrs:[ ("ref", Names.Service_ref.to_string r) ]
        []
  | Expr.Q_send { dest; q } ->
      Tree.element ~gen l_q_send
        ~attrs:[ ("peer", Peer_id.to_string dest) ]
        [ query_to_tree ~gen q ]

let ( let* ) = Result.bind

let attr_or e name =
  match Tree.attr (Tree.Element e) name with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "expression element %s lacks attribute %S"
           (Label.to_string e.Tree.label)
           name)

let peer_attr e name =
  let* v = attr_or e name in
  match Peer_id.of_string_opt v with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "invalid peer identifier %S" v)

let element_children e = List.filter Tree.is_element e.Tree.children

let rec of_element (e : Tree.element) : (Expr.t, string) result =
  let lbl = e.label in
  if Label.equal lbl l_tree then
    let* at = peer_attr e "at" in
    (* The whole child list is the forest — text nodes included. *)
    Ok (Expr.Data_at { forest = e.children; at })
  else if Label.equal lbl l_doc then
    let* r = attr_or e "ref" in
    match Names.Doc_ref.of_string r with
    | dr -> Ok (Expr.Doc dr)
    | exception Invalid_argument msg -> Error msg
  else if Label.equal lbl l_apply then
    let* at = peer_attr e "at" in
    match element_children e with
    | [ q; Tree.Element args ] when Label.equal args.label l_args ->
        let* query =
          match q with
          | Tree.Element qe -> query_of_element qe
          | Tree.Text _ -> Error "e-apply query must be an element"
        in
        let* args =
          List.fold_left
            (fun acc child ->
              let* acc = acc in
              match child with
              | Tree.Element ce ->
                  let* e = of_element ce in
                  Ok (e :: acc)
              | Tree.Text _ -> Ok acc)
            (Ok []) args.children
        in
        Ok (Expr.Query_app { query; args = List.rev args; at })
    | _ -> Error "e-apply must contain a query and an args element"
  else if Label.equal lbl l_sc then
    let* at = peer_attr e "at" in
    match element_children e with
    | [ Tree.Element sce ] ->
        let* sc = Axml_doc.Sc.of_element sce in
        Ok (Expr.Sc { sc; at })
    | _ -> Error "e-sc must contain exactly one sc element"
  else if Label.equal lbl l_send then
    let* kind = attr_or e "kind" in
    let* dest =
      match kind with
      | "peer" ->
          let* p = peer_attr e "peer" in
          Ok (Expr.To_peer p)
      | "doc" ->
          let* p = peer_attr e "peer" in
          let* d = attr_or e "doc" in
          (match Names.Doc_name.of_string_opt d with
          | Some d -> Ok (Expr.To_doc (d, p))
          | None -> Error (Printf.sprintf "invalid document name %S" d))
      | "nodes" ->
          let* spec = attr_or e "nodes" in
          let parts =
            String.split_on_char ';' spec |> List.filter (fun s -> s <> "")
          in
          let* targets =
            List.fold_left
              (fun acc s ->
                let* acc = acc in
                match Names.Node_ref.of_string s with
                | Some r -> Ok (r :: acc)
                | None -> Error (Printf.sprintf "invalid node ref %S" s))
              (Ok []) parts
          in
          Ok (Expr.To_nodes (List.rev targets))
      | other -> Error (Printf.sprintf "unknown send kind %S" other)
    in
    match element_children e with
    | [ Tree.Element ce ] ->
        let* expr = of_element ce in
        Ok (Expr.Send { dest; expr })
    | _ -> Error "e-send must contain exactly one expression"
  else if Label.equal lbl l_eval then
    let* at = peer_attr e "at" in
    match element_children e with
    | [ Tree.Element ce ] ->
        let* expr = of_element ce in
        Ok (Expr.Eval_at { at; expr })
    | _ -> Error "e-eval must contain exactly one expression"
  else if Label.equal lbl l_shared then
    let* at = peer_attr e "at" in
    let* name_str = attr_or e "name" in
    let* name =
      match Names.Doc_name.of_string_opt name_str with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "invalid document name %S" name_str)
    in
    let wrapped label =
      List.find_map
        (fun child ->
          match child with
          | Tree.Element ce when Label.equal ce.label label -> (
              match element_children ce with
              | [ Tree.Element inner ] -> Some (of_element inner)
              | _ -> Some (Error "share value/body must wrap one expression"))
          | Tree.Element _ | Tree.Text _ -> None)
        e.children
    in
    (match (wrapped l_value, wrapped l_body) with
    | Some value, Some body ->
        let* value = value in
        let* body = body in
        Ok (Expr.Shared { name; at; value; body })
    | _ -> Error "e-share must contain value and body elements")
  else
    Error
      (Printf.sprintf "unknown expression element %s" (Label.to_string lbl))

and query_of_element (e : Tree.element) : (Expr.query_expr, string) result =
  let lbl = e.label in
  if Label.equal lbl l_q_val then
    let* at = peer_attr e "at" in
    let text = Tree.text_content (Tree.Element e) in
    match Axml_query.Parser.parse text with
    | Ok q -> Ok (Expr.Q_val { q; at })
    | Error pe -> Error (Format.asprintf "%a" Axml_query.Parser.pp_error pe)
  else if Label.equal lbl l_q_service then
    let* r = attr_or e "ref" in
    match Names.Service_ref.of_string r with
    | sr -> Ok (Expr.Q_service sr)
    | exception Invalid_argument msg -> Error msg
  else if Label.equal lbl l_q_send then
    let* dest = peer_attr e "peer" in
    match element_children e with
    | [ Tree.Element qe ] ->
        let* q = query_of_element qe in
        Ok (Expr.Q_send { dest; q })
    | _ -> Error "q-send must contain exactly one query"
  else
    Error (Printf.sprintf "unknown query element %s" (Label.to_string lbl))

let of_tree = function
  | Tree.Element e -> of_element e
  | Tree.Text _ -> Error "expected an expression element, found text"

let to_xml_string e =
  let gen = Axml_xml.Node_id.Gen.create ~namespace:"expr" in
  Axml_xml.Serializer.to_string (to_tree ~gen e)

let of_xml_string s =
  let gen = Axml_xml.Node_id.Gen.create ~namespace:"expr" in
  match Axml_xml.Parser.parse ~gen s with
  | Error e -> Error (Format.asprintf "%a" Axml_xml.Parser.pp_error e)
  | Ok t -> of_tree t

(* Counts the serialized size without materializing the XML string;
   the tree is still built (cheap — one node per syntactic form) but
   the O(output) string is not. *)
let byte_size e =
  let gen = Axml_xml.Node_id.Gen.create ~namespace:"expr" in
  Axml_xml.Serializer.serialized_length (to_tree ~gen e)
