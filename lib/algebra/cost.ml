module Peer_id = Axml_net.Peer_id
module Topology = Axml_net.Topology
module Link = Axml_net.Link
module Names = Axml_doc.Names
module Tree = Axml_xml.Tree

type env = {
  topology : Topology.t;
  doc_bytes : Names.Doc_ref.t -> int;
  doc_stats : Names.Doc_ref.t -> Axml_query.Selectivity.Stats.t option;
  service_query : Names.Service_ref.t -> Axml_query.Ast.t option;
  query_out_bytes : Axml_query.Ast.t -> int list -> int;
  cpu_ms_per_kb : float;
  cpu_factor : Peer_id.t -> float;
}

let default_env ?(cpu_ms_per_kb = 0.01) ?(cpu_factor = fun _ -> 1.0)
    ?(doc_bytes = fun _ -> 4096) ?(doc_stats = fun _ -> None)
    ?(service_query = fun _ -> None)
    ?(query_out_bytes = fun _q inputs -> List.fold_left ( + ) 0 inputs / 5)
    topology =
  {
    topology;
    doc_bytes;
    doc_stats;
    service_query;
    query_out_bytes;
    cpu_ms_per_kb;
    cpu_factor;
  }

type t = {
  bytes : int;
  messages : int;
  latency_ms : float;
  result_bytes : int;
}

let zero = { bytes = 0; messages = 0; latency_ms = 0.0; result_bytes = 0 }

let pp fmt c =
  Format.fprintf fmt "{bytes=%d; msgs=%d; latency=%.2fms; result=%dB}" c.bytes
    c.messages c.latency_ms c.result_bytes

let dominates a b =
  a.bytes <= b.bytes && a.messages <= b.messages
  && a.latency_ms <= b.latency_ms

let weighted ?(bytes_weight = 0.5) ?(latency_weight = 0.5) c =
  (bytes_weight *. float_of_int c.bytes)
  +. (latency_weight *. c.latency_ms *. 100.0)

(* Sequential composition: latencies add, volumes add; the result size
   of the second stage wins. *)
let seq a b =
  {
    bytes = a.bytes + b.bytes;
    messages = a.messages + b.messages;
    latency_ms = a.latency_ms +. b.latency_ms;
    result_bytes = b.result_bytes;
  }

(* Parallel composition: volumes add, latency is the critical path. *)
let par a b =
  {
    bytes = a.bytes + b.bytes;
    messages = a.messages + b.messages;
    latency_ms = max a.latency_ms b.latency_ms;
    result_bytes = a.result_bytes + b.result_bytes;
  }

let transfer env ~src ~dst ~bytes =
  if Peer_id.equal src dst then { zero with result_bytes = bytes }
  else
    let link = Topology.link env.topology ~src ~dst in
    {
      bytes;
      messages = 1;
      latency_ms = Link.transfer_ms link ~bytes;
      result_bytes = bytes;
    }

let cpu env ~peer ~bytes =
  {
    zero with
    latency_ms =
      env.cpu_ms_per_kb *. env.cpu_factor peer
      *. (float_of_int bytes /. 1024.0);
  }

let site_peer ~ctx expr =
  match Expr.site expr with Names.At p -> p | Names.Any -> ctx

let query_text_bytes q = String.length (Axml_query.Ast.to_string q)

(* Resolve the query of an application: its textual size, the peer
   where the value initially lives, and its AST when visible. *)
let rec query_info env = function
  | Expr.Q_val { q; at } -> (query_text_bytes q, at, Some q)
  | Expr.Q_service r ->
      let q = env.service_query r in
      let bytes = match q with Some q -> query_text_bytes q | None -> 256 in
      let at =
        match r.Names.Service_ref.at with
        | Names.At p -> Some p
        | Names.Any -> None
      in
      (bytes, Option.value ~default:(Peer_id.of_string "unknown") at, q)
  | Expr.Q_send { dest; q } ->
      let _, _, ast = query_info env q in
      (match ast with
      | Some ast -> (query_text_bytes ast, dest, Some ast)
      | None -> (256, dest, None))

let rec of_expr env ~ctx expr =
  match expr with
  | Expr.Data_at { forest; _ } ->
      { zero with result_bytes = Axml_xml.Forest.byte_size forest }
  | Expr.Doc r -> { zero with result_bytes = env.doc_bytes r }
  | Expr.Query_app { query; args; at } ->
      (* Ship the query value to [at] if it lives elsewhere. *)
      let q_bytes, q_at, q_ast = query_info env query in
      let q_cost = transfer env ~src:q_at ~dst:at ~bytes:q_bytes in
      (* Arguments evaluate in parallel, each followed by its shipping
         to [at]. *)
      let arg_cost =
        List.fold_left
          (fun acc arg ->
            let c = of_expr env ~ctx:at arg in
            let src = site_peer ~ctx:at arg in
            let shipped =
              seq c (transfer env ~src ~dst:at ~bytes:c.result_bytes)
            in
            par acc shipped)
          zero args
      in
      let input_bytes = arg_cost.result_bytes in
      (* When every argument is a named document whose statistics the
         environment knows (index-backed label histograms), estimate
         the output from the query's actual shape instead of a flat
         input fraction. *)
      let stats_estimate =
        match q_ast with
        | None -> None
        | Some q ->
            if args = [] then None
            else
              let stats =
                List.map
                  (function Expr.Doc r -> env.doc_stats r | _ -> None)
                  args
              in
              if List.for_all Option.is_some stats then
                let (e : Axml_query.Selectivity.estimate) =
                  Axml_query.Selectivity.sketch q (List.filter_map Fun.id stats)
                in
                Some e.Axml_query.Selectivity.bytes
              else None
      in
      let out_bytes =
        match (stats_estimate, q_ast) with
        | Some b, _ -> b
        | None, Some q ->
            env.query_out_bytes q
              (List.map (fun _ -> input_bytes / max 1 (List.length args)) args)
        | None, None -> input_bytes / 5
      in
      let compute = cpu env ~peer:at ~bytes:input_bytes in
      {
        (seq (par q_cost arg_cost) compute) with
        result_bytes = out_bytes;
      }
  | Expr.Sc { sc; at } -> (
      match sc.Axml_doc.Sc.provider with
      | Names.Any ->
          (* Unresolved generic service: charge as if provided
             locally. *)
          let payload =
            List.fold_left
              (fun acc f -> acc + Axml_xml.Forest.byte_size f)
              0 sc.Axml_doc.Sc.params
          in
          { (cpu env ~peer:ctx ~bytes:payload) with result_bytes = payload / 5 }
      | Names.At provider ->
          let payload =
            List.fold_left
              (fun acc f -> acc + Axml_xml.Forest.byte_size f)
              0 sc.Axml_doc.Sc.params
          in
          (* Step 1: params travel to the provider. *)
          let ship_params = transfer env ~src:at ~dst:provider ~bytes:payload in
          let q_ast =
            env.service_query
              (Names.Service_ref.make sc.Axml_doc.Sc.service
                 (Names.At provider))
          in
          let out_bytes =
            match q_ast with
            | Some q -> env.query_out_bytes q [ payload ]
            | None -> payload / 5
          in
          let compute = cpu env ~peer:provider ~bytes:payload in
          (* Steps 2-3: responses travel to the forward targets (or
             back to the caller by default). *)
          let targets =
            match sc.Axml_doc.Sc.forward with
            | [] -> [ at ]
            | fw -> List.map (fun (r : Names.Node_ref.t) -> r.peer) fw
          in
          let deliver =
            List.fold_left
              (fun acc dst ->
                par acc (transfer env ~src:provider ~dst ~bytes:out_bytes))
              zero targets
          in
          {
            (seq (seq ship_params compute) deliver) with
            result_bytes = out_bytes;
          })
  | Expr.Send { dest; expr } -> (
      let inner = of_expr env ~ctx expr in
      let src = site_peer ~ctx expr in
      match dest with
      | Expr.To_peer p ->
          seq inner (transfer env ~src ~dst:p ~bytes:inner.result_bytes)
      | Expr.To_doc (_, p) ->
          {
            (seq inner (transfer env ~src ~dst:p ~bytes:inner.result_bytes)) with
            result_bytes = 0;
          }
      | Expr.To_nodes targets ->
          let deliver =
            List.fold_left
              (fun acc (r : Names.Node_ref.t) ->
                par acc
                  (transfer env ~src ~dst:r.peer ~bytes:inner.result_bytes))
              zero targets
          in
          { (seq inner deliver) with result_bytes = 0 })
  | Expr.Eval_at { at; expr } ->
      (* Ship the plan itself to the delegate, then evaluate there. *)
      let plan_bytes = Expr_xml.byte_size expr in
      let ship_plan = transfer env ~src:ctx ~dst:at ~bytes:plan_bytes in
      seq ship_plan (of_expr env ~ctx:at expr)
  | Expr.Shared { at; value; body; _ } ->
      (* Materialization sequences value before body — rule (13)'s
         parallelism loss shows up as added latency here. *)
      let value_cost = of_expr env ~ctx value in
      let src = site_peer ~ctx value in
      let install =
        transfer env ~src ~dst:at ~bytes:value_cost.result_bytes
      in
      let body_cost = of_expr env ~ctx body in
      seq (seq value_cost install) body_cost
