module Peer_id = Axml_net.Peer_id
module Names = Axml_doc.Names
module Tree = Axml_xml.Tree
module Forest = Axml_xml.Forest

type dest =
  | To_peer of Peer_id.t
  | To_nodes of Names.Node_ref.t list
  | To_doc of Names.Doc_name.t * Peer_id.t

type query_expr =
  | Q_val of { q : Axml_query.Ast.t; at : Peer_id.t }
  | Q_service of Names.Service_ref.t
  | Q_send of { dest : Peer_id.t; q : query_expr }

type t =
  | Data_at of { forest : Forest.t; at : Peer_id.t }
  | Doc of Names.Doc_ref.t
  | Query_app of { query : query_expr; args : t list; at : Peer_id.t }
  | Sc of { sc : Axml_doc.Sc.t; at : Peer_id.t }
  | Send of { dest : dest; expr : t }
  | Eval_at of { at : Peer_id.t; expr : t }
  | Shared of {
      name : Names.Doc_name.t;
      at : Peer_id.t;
      value : t;
      body : t;
    }

let tree_at tree ~at = Data_at { forest = [ tree ]; at }
let data_at forest ~at = Data_at { forest; at }
let doc name ~at = Doc (Names.Doc_ref.at_peer name ~peer:at)
let doc_any name = Doc (Names.Doc_ref.any name)
let query_at q ~at ~args = Query_app { query = Q_val { q; at }; args; at }
let send_to_peer p expr = Send { dest = To_peer p; expr }
let send_to_nodes targets expr = Send { dest = To_nodes targets; expr }

let send_as_doc ~name ~at expr =
  Send { dest = To_doc (Names.Doc_name.of_string name, at); expr }

let eval_at at expr = Eval_at { at; expr }
let sc s ~at = Sc { sc = s; at }

let shared ~name ~at ~value ~body =
  Shared { name = Names.Doc_name.of_string name; at; value; body }

let query_site = function
  | Q_val { at; _ } -> Names.At at
  | Q_service r -> r.Names.Service_ref.at
  | Q_send { dest; _ } -> Names.At dest

let rec site = function
  | Data_at { at; _ } -> Names.At at
  | Doc r -> r.Names.Doc_ref.at
  | Query_app { at; _ } -> Names.At at
  | Sc { at; _ } -> Names.At at
  | Send { dest = To_peer p; _ } -> Names.At p
  | Send { dest = To_nodes _ | To_doc _; expr } ->
      (* Side-effecting sends return ∅ at the site of their operand
         (definitions (3), (4)). *)
      site expr
  | Eval_at { expr; _ } -> site expr
  | Shared { body; _ } -> site body

let subexpressions = function
  | Data_at _ | Doc _ | Sc _ -> []
  | Query_app { args; _ } -> args
  | Send { expr; _ } | Eval_at { expr; _ } -> [ expr ]
  | Shared { value; body; _ } -> [ value; body ]

let map_children f = function
  | (Data_at _ | Doc _ | Sc _) as e -> e
  | Query_app q -> Query_app { q with args = List.map f q.args }
  | Send s -> Send { s with expr = f s.expr }
  | Eval_at e -> Eval_at { e with expr = f e.expr }
  | Shared s ->
      (* Forced left-to-right so [f] sees children in
         [subexpressions] order — record fields evaluate
         right-to-left, which silently swapped the two slots for any
         stateful [f] (e.g. Rewrite.everywhere's positional rebuild). *)
      let value = f s.value in
      let body = f s.body in
      Shared { s with value; body }

let rec size e =
  1 + List.fold_left (fun acc c -> acc + size c) 0 (subexpressions e)

exception Uncacheable

let cache_deps e =
  let add acc (p, d) =
    if List.exists (fun (p', d') -> Peer_id.equal p p' && String.equal d d') acc
    then acc
    else (p, d) :: acc
  in
  let rec go acc = function
    | Data_at { forest; _ } ->
        (* A literal forest is a value — no dependencies — unless it
           carries sc-rooted trees: evaluating those activates the
           calls (definition (6)), a side effect a cached replay would
           repeat at the wrong time. *)
        if List.exists Axml_doc.Sc.is_sc forest then raise Uncacheable else acc
    | Doc { Names.Doc_ref.name; at = Names.At p } ->
        add acc (p, Names.Doc_name.to_string name)
    | Doc { at = Names.Any; _ } ->
        (* Resolution of d@any depends on catalog state, not document
           content — not captured by doc versions. *)
        raise Uncacheable
    | Query_app { query = Q_val _; args; _ } -> List.fold_left go acc args
    | Query_app { query = Q_service _ | Q_send _; _ } ->
        (* Service lookup reads registry state; Q_send deploys. *)
        raise Uncacheable
    | Eval_at { expr; _ } -> go acc expr
    | Sc _ | Send _ | Shared _ ->
        (* Activations, shipping and materialization are effects. *)
        raise Uncacheable
  in
  match go [] e with
  | deps ->
      Some
        (List.sort
           (fun (p, d) (p', d') ->
             let c = Peer_id.compare p p' in
             if c <> 0 then c else String.compare d d')
           deps)
  | exception Uncacheable -> None

let add_peer acc p = if List.exists (Peer_id.equal p) acc then acc else acc @ [ p ]
let location_peers acc = function Names.At p -> add_peer acc p | Names.Any -> acc

let rec query_peers acc = function
  | Q_val { at; _ } -> add_peer acc at
  | Q_service r -> location_peers acc r.Names.Service_ref.at
  | Q_send { dest; q } -> query_peers (add_peer acc dest) q

let dest_peers acc = function
  | To_peer p -> add_peer acc p
  | To_doc (_, p) -> add_peer acc p
  | To_nodes targets ->
      List.fold_left
        (fun acc (r : Names.Node_ref.t) -> add_peer acc r.peer)
        acc targets

let rec peers_acc acc = function
  | Data_at { at; _ } -> add_peer acc at
  | Doc r -> location_peers acc r.Names.Doc_ref.at
  | Query_app { query; args; at } ->
      let acc = add_peer acc at in
      let acc = query_peers acc query in
      List.fold_left peers_acc acc args
  | Sc { sc; at } ->
      let acc = add_peer acc at in
      let acc = location_peers acc sc.Axml_doc.Sc.provider in
      List.fold_left
        (fun acc (r : Names.Node_ref.t) -> add_peer acc r.peer)
        acc sc.Axml_doc.Sc.forward
  | Send { dest; expr } -> peers_acc (dest_peers acc dest) expr
  | Eval_at { at; expr } -> peers_acc (add_peer acc at) expr
  | Shared { at; value; body; _ } ->
      peers_acc (peers_acc (add_peer acc at) value) body

let peers e = peers_acc [] e

let rec equal_expr a b =
  match (a, b) with
  | Data_at x, Data_at y ->
      (* Canonical comparison: node identifiers, sibling order and text
         segmentation are wire artefacts, not plan structure. *)
      Peer_id.equal x.at y.at
      && Axml_xml.Canonical.equal_forest x.forest y.forest
  | Doc x, Doc y -> Names.Doc_ref.equal x y
  | Query_app x, Query_app y ->
      Peer_id.equal x.at y.at
      && query_equal x.query y.query
      && List.equal equal_expr x.args y.args
  | Sc x, Sc y -> Peer_id.equal x.at y.at && Axml_doc.Sc.equal x.sc y.sc
  | Send x, Send y -> dest_equal x.dest y.dest && equal_expr x.expr y.expr
  | Eval_at x, Eval_at y -> Peer_id.equal x.at y.at && equal_expr x.expr y.expr
  | Shared x, Shared y ->
      Names.Doc_name.equal x.name y.name
      && Peer_id.equal x.at y.at
      && equal_expr x.value y.value && equal_expr x.body y.body
  | (Data_at _ | Doc _ | Query_app _ | Sc _ | Send _ | Eval_at _ | Shared _), _
    ->
      false

and query_equal a b =
  match (a, b) with
  | Q_val x, Q_val y -> Peer_id.equal x.at y.at && Axml_query.Ast.equal x.q y.q
  | Q_service x, Q_service y -> Names.Service_ref.equal x y
  | Q_send x, Q_send y -> Peer_id.equal x.dest y.dest && query_equal x.q y.q
  | (Q_val _ | Q_service _ | Q_send _), _ -> false

and dest_equal a b =
  match (a, b) with
  | To_peer x, To_peer y -> Peer_id.equal x y
  | To_nodes x, To_nodes y -> List.equal Names.Node_ref.equal x y
  | To_doc (n1, p1), To_doc (n2, p2) ->
      Names.Doc_name.equal n1 n2 && Peer_id.equal p1 p2
  | (To_peer _ | To_nodes _ | To_doc _), _ -> false

(* Full structural comparisons are the inner loop of plan search; the
   counter lets the planner benchmarks report how many a strategy
   actually paid for. *)
let equal_counter = ref 0

let equal a b =
  incr equal_counter;
  equal_expr a b

let equal_calls () = !equal_counter

(* {2 Fingerprints}

   A fingerprint must be invariant under everything [equal] ignores:
   node identifiers and sibling order inside embedded forests (hashed
   through the canonical form, combined commutatively for multiset
   equality) and the order of an sc's forward list (sorted before
   hashing). *)

module Fingerprint = struct
  type t = { hash : int; size : int; depth : int }

  let equal a b = a.hash = b.hash && a.size = b.size && a.depth = b.depth

  let compare a b =
    match Int.compare a.hash b.hash with
    | 0 -> (
        match Int.compare a.size b.size with
        | 0 -> Int.compare a.depth b.depth
        | c -> c)
    | c -> c

  let pp fmt f = Format.fprintf fmt "#%x[n=%d,d=%d]" f.hash f.size f.depth
end

let mix h x = ((h * 0x01000193) lxor x) land max_int
let hash_string s = Hashtbl.hash (s : string)

let hash_location = function
  | Names.Any -> 0x9e3779b9 land max_int
  | Names.At p -> mix 0x51ed (Peer_id.hash p)

(* Multiset hash: commutative combination of canonical tree hashes. *)
let hash_forest f =
  List.fold_left
    (fun acc t -> (acc + Axml_xml.Canonical.hash t) land max_int)
    0x1505 f

let hash_node_ref (r : Names.Node_ref.t) =
  hash_string (Names.Node_ref.to_string r)

let hash_sc (sc : Axml_doc.Sc.t) =
  let h = mix 6 (hash_location sc.Axml_doc.Sc.provider) in
  let h =
    mix h (hash_string (Names.Service_name.to_string sc.Axml_doc.Sc.service))
  in
  let h =
    List.fold_left (fun h f -> mix h (hash_forest f)) h sc.Axml_doc.Sc.params
  in
  List.fold_left
    (fun h r -> mix h (hash_node_ref r))
    h
    (List.sort Names.Node_ref.compare sc.Axml_doc.Sc.forward)

let rec hash_query = function
  | Q_val { q; at } -> mix (mix 20 (Hashtbl.hash q)) (Peer_id.hash at)
  | Q_service r ->
      mix
        (mix 21 (hash_string (Names.Service_name.to_string r.Names.Service_ref.name)))
        (hash_location r.Names.Service_ref.at)
  | Q_send { dest; q } -> mix (mix 22 (Peer_id.hash dest)) (hash_query q)

let hash_dest = function
  | To_peer p -> mix 30 (Peer_id.hash p)
  | To_nodes targets ->
      List.fold_left (fun h r -> mix h (hash_node_ref r)) 31 targets
  | To_doc (d, p) ->
      mix (mix 32 (hash_string (Names.Doc_name.to_string d))) (Peer_id.hash p)

let rec fingerprint e : Fingerprint.t =
  match e with
  | Data_at { forest; at } ->
      { hash = mix (mix 1 (Peer_id.hash at)) (hash_forest forest);
        size = 1;
        depth = 1;
      }
  | Doc r ->
      {
        hash =
          mix
            (mix 2 (hash_string (Names.Doc_name.to_string r.Names.Doc_ref.name)))
            (hash_location r.Names.Doc_ref.at);
        size = 1;
        depth = 1;
      }
  | Sc { sc; at } ->
      { hash = mix (hash_sc sc) (Peer_id.hash at); size = 1; depth = 1 }
  | Query_app { query; args; at } ->
      let h = mix (mix 3 (hash_query query)) (Peer_id.hash at) in
      combine h args
  | Send { dest; expr } -> combine (mix 4 (hash_dest dest)) [ expr ]
  | Eval_at { at; expr } -> combine (mix 5 (Peer_id.hash at)) [ expr ]
  | Shared { name; at; value; body } ->
      let h =
        mix (mix 7 (hash_string (Names.Doc_name.to_string name)))
          (Peer_id.hash at)
      in
      combine h [ value; body ]

and combine h children =
  let h, size, depth =
    List.fold_left
      (fun (h, size, depth) child ->
        let f = fingerprint child in
        (mix h f.Fingerprint.hash, size + f.size, max depth f.depth))
      (h, 1, 0) children
  in
  { hash = h; size; depth = depth + 1 }

let depth e = (fingerprint e).Fingerprint.depth

let rec pp fmt = function
  | Data_at { forest; at } ->
      Format.fprintf fmt "data[%dB]@%a" (Forest.byte_size forest) Peer_id.pp at
  | Doc r -> Format.fprintf fmt "doc(%a)" Names.Doc_ref.pp r
  | Query_app { query; args; at } ->
      Format.fprintf fmt "@[<hv 2>apply@%a(%a)(@,%a)@]" Peer_id.pp at pp_query
        query
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           pp)
        args
  | Sc { sc; at } -> Format.fprintf fmt "%a@%a" Axml_doc.Sc.pp sc Peer_id.pp at
  | Send { dest; expr } ->
      Format.fprintf fmt "@[<hv 2>send(%a,@ %a)@]" pp_dest dest pp expr
  | Eval_at { at; expr } ->
      Format.fprintf fmt "@[<hv 2>eval@%a(@,%a)@]" Peer_id.pp at pp expr
  | Shared { name; at; value; body } ->
      Format.fprintf fmt "@[<hv 2>share %a@%a :=@ %a@ in@ %a@]"
        Names.Doc_name.pp name Peer_id.pp at pp value pp body

and pp_query fmt = function
  | Q_val { q; at } ->
      Format.fprintf fmt "query[%d-ary]@%a" (Axml_query.Ast.arity q) Peer_id.pp
        at
  | Q_service r -> Format.fprintf fmt "svc(%a)" Names.Service_ref.pp r
  | Q_send { dest; q } ->
      Format.fprintf fmt "send(%a, %a)" Peer_id.pp dest pp_query q

and pp_dest fmt = function
  | To_peer p -> Peer_id.pp fmt p
  | To_nodes targets ->
      Format.fprintf fmt "[%s]"
        (String.concat "; " (List.map Names.Node_ref.to_string targets))
  | To_doc (d, p) ->
      Format.fprintf fmt "%s@%s" (Names.Doc_name.to_string d)
        (Peer_id.to_string p)

let to_string e = Format.asprintf "%a" pp e
