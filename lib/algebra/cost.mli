(** Static cost model for expressions.

    Ranks the plans produced by {!module:Rewrite} before any of them
    runs.  Charges follow the affine link model of
    {!Axml_net.Link.transfer_ms}; local evaluation is charged
    proportionally to the bytes a query consumes.  Parallel branches
    (the arguments of an application, the targets of a multicast
    [send]) contribute the {e maximum} of their latencies; sequencing
    contributes the sum — the classical response-time model of
    distributed query processing.

    The model is an estimator: experiments compare its ranking with
    measured simulator statistics (EXPERIMENTS.md, E10). *)

type env = {
  topology : Axml_net.Topology.t;
  doc_bytes : Axml_doc.Names.Doc_ref.t -> int;
      (** Size oracle for documents (statistics a peer would keep
          about the network's documents). *)
  doc_stats :
    Axml_doc.Names.Doc_ref.t -> Axml_query.Selectivity.Stats.t option;
      (** Per-label statistics for documents whose store index is
          visible; sharpens {!Axml_query.Selectivity.sketch}-based
          output estimates for query applications over named
          documents. *)
  service_query : Axml_doc.Names.Service_ref.t -> Axml_query.Ast.t option;
      (** Visible implementations of declarative services. *)
  query_out_bytes : Axml_query.Ast.t -> int list -> int;
      (** Output-size estimate from input sizes. *)
  cpu_ms_per_kb : float;
      (** Local evaluation cost per kilobyte of input consumed. *)
  cpu_factor : Axml_net.Peer_id.t -> float;
      (** Per-peer speed multiplier (2.0 = twice as slow); mirrors
          {!Axml_net.Sim.cpu_factor}. *)
}

val default_env :
  ?cpu_ms_per_kb:float ->
  ?cpu_factor:(Axml_net.Peer_id.t -> float) ->
  ?doc_bytes:(Axml_doc.Names.Doc_ref.t -> int) ->
  ?doc_stats:
    (Axml_doc.Names.Doc_ref.t -> Axml_query.Selectivity.Stats.t option) ->
  ?service_query:(Axml_doc.Names.Service_ref.t -> Axml_query.Ast.t option) ->
  ?query_out_bytes:(Axml_query.Ast.t -> int list -> int) ->
  Axml_net.Topology.t ->
  env
(** Defaults: unknown documents estimate to 4 KiB; no visible service
    queries; query output estimates to 20% of total input (the
    selection-heavy workloads of the paper); 0.01 ms/KiB CPU. *)

type t = {
  bytes : int;  (** Total bytes shipped over remote links. *)
  messages : int;  (** Remote messages. *)
  latency_ms : float;  (** Critical-path completion time. *)
  result_bytes : int;  (** Estimated size of the final result. *)
}

val zero : t
val pp : Format.formatter -> t -> unit

val dominates : t -> t -> bool
(** [dominates a b]: a is no worse on bytes, messages and latency. *)

val weighted : ?bytes_weight:float -> ?latency_weight:float -> t -> float
(** Scalarization used by the optimizer: by default
    [0.5 * bytes + 0.5 * latency_ms * 100]. *)

val of_expr : env -> ctx:Axml_net.Peer_id.t -> Expr.t -> t
(** Estimate the cost of evaluating the expression driven from peer
    [ctx] (the peer issuing eval\@ctx(e)). *)
