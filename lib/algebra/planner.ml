module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics

type result = {
  plan : Expr.t;
  cost : Cost.t;
  search : Optimizer.result;
  queries_optimized : int;
  equal_calls : int;
  strategy : string;
}

(* Site-local layer: rewrite every embedded query.  A query value is
   evaluated at exactly one peer wherever it ends up (definition (7)
   ships it whole), and Axml_query.Optimize preserves results exactly,
   so optimizing in place is sound at any nesting depth. *)
let optimize_queries ?stats expr =
  let changed = ref 0 in
  let opt_ast q =
    let q' = Axml_query.Optimize.optimize ?stats q in
    if not (Axml_query.Ast.equal q q') then incr changed;
    q'
  in
  let rec opt_query = function
    | Expr.Q_val { q; at } -> Expr.Q_val { q = opt_ast q; at }
    | Expr.Q_service _ as q -> q
    | Expr.Q_send { dest; q } -> Expr.Q_send { dest; q = opt_query q }
  in
  let rec walk e =
    match e with
    | Expr.Query_app { query; args; at } ->
        Expr.Query_app { query = opt_query query; args = List.map walk args; at }
    | Expr.Data_at _ | Expr.Doc _ | Expr.Sc _ | Expr.Send _ | Expr.Eval_at _
    | Expr.Shared _ ->
        Expr.map_children walk e
  in
  let e' = walk expr in
  (e', !changed)

let plan ~env ~ctx ?objective ?visited ?peers ?stats strategy expr =
  let metering = Metrics.is_on Metrics.default in
  let t0 = if metering then Trace.wall_ms () else 0.0 in
  let equal_before = Expr.equal_calls () in
  let search = Optimizer.optimize ~env ~ctx ?objective ?visited ?peers strategy expr in
  let equal_calls = Expr.equal_calls () - equal_before in
  let plan, queries_optimized = optimize_queries ?stats search.Optimizer.plan in
  if metering then begin
    let peer = Axml_net.Peer_id.to_string ctx in
    Metrics.incr Metrics.default ~peer ~by:equal_calls ~subsystem:"plan"
      "equal_calls";
    Metrics.incr Metrics.default ~peer ~by:queries_optimized ~subsystem:"plan"
      "queries_optimized";
    Metrics.observe Metrics.default ~peer ~subsystem:"plan" "search_ms"
      (Trace.wall_ms () -. t0)
  end;
  let cost =
    (* Query optimization cannot worsen evaluation, but it can shift
       the textual size the cost model charges for query shipping;
       re-estimate so the reported cost describes the plan we return. *)
    if queries_optimized = 0 then search.Optimizer.cost
    else Cost.of_expr env ~ctx plan
  in
  {
    plan;
    cost;
    search;
    queries_optimized;
    equal_calls;
    strategy = Optimizer.strategy_name strategy;
  }

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>strategy: %s@ initial:  %a@ searched: %a@ final:    %a@ explored %d \
     plans (%d expansions), %d Expr.equal calls@ %d embedded quer%s \
     optimized@ "
    r.strategy Cost.pp r.search.Optimizer.initial_cost Cost.pp
    r.search.Optimizer.cost Cost.pp r.cost r.search.Optimizer.explored
    r.search.Optimizer.expansions r.equal_calls r.queries_optimized
    (if r.queries_optimized = 1 then "y" else "ies");
  List.iter
    (fun (s : Optimizer.step) ->
      Format.fprintf fmt "  %s -> %a@ " s.rule Cost.pp s.cost)
    r.search.Optimizer.trace;
  Format.fprintf fmt "plan: %a@]" Expr.pp r.plan

(* Minimal JSON emission — the toolkit deliberately has no JSON
   dependency. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_cost (c : Cost.t) =
  Printf.sprintf
    {|{"bytes":%d,"messages":%d,"latency_ms":%.3f,"result_bytes":%d}|} c.bytes
    c.messages c.latency_ms c.result_bytes

let explain_json r =
  let trace =
    r.search.Optimizer.trace
    |> List.map (fun (s : Optimizer.step) ->
           Printf.sprintf {|{"rule":"%s","cost":%s}|} (json_escape s.rule)
             (json_cost s.cost))
    |> String.concat ","
  in
  Printf.sprintf
    {|{"strategy":"%s","initial_cost":%s,"search_cost":%s,"final_cost":%s,"explored":%d,"expansions":%d,"equal_calls":%d,"queries_optimized":%d,"trace":[%s],"plan":"%s"}|}
    (json_escape r.strategy)
    (json_cost r.search.Optimizer.initial_cost)
    (json_cost r.search.Optimizer.cost)
    (json_cost r.cost) r.search.Optimizer.explored r.search.Optimizer.expansions
    r.equal_calls r.queries_optimized trace
    (json_escape (Expr.to_string r.plan))
