module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics

type strategy =
  | Exhaustive of { depth : int }
  | Greedy of { max_steps : int }
  | Best_first of { max_expansions : int }
  | Beam of { width : int; depth : int }

type visited_impl = [ `Fingerprint | `List ]

type step = { rule : string; cost : Cost.t }

type result = {
  plan : Expr.t;
  cost : Cost.t;
  initial_cost : Cost.t;
  explored : int;
  expansions : int;
  trace : step list;
}

let strategy_name = function
  | Exhaustive { depth } -> Printf.sprintf "exhaustive(depth=%d)" depth
  | Greedy { max_steps } -> Printf.sprintf "greedy(steps=%d)" max_steps
  | Best_first { max_expansions } ->
      Printf.sprintf "best-first(expansions=%d)" max_expansions
  | Beam { width; depth } -> Printf.sprintf "beam(width=%d,depth=%d)" width depth

(* Auxiliary materializations introduced by rules (10) and (13) need
   fresh names.  Deriving the name from the *parent* expression's
   fingerprint (rather than a search-global counter) makes the name a
   function of the rewrite performed, not of the order in which the
   search happened to visit plans — so every strategy reconstructs the
   same plan for the same rewrite path, and re-running an optimization
   is reproducible.  The "_tmp" prefix keeps them out of the runtime's
   Σ fingerprint (System.fingerprint). *)
let fresh_for parent =
  let h = (Expr.fingerprint parent).Expr.Fingerprint.hash land 0xFFFFFF in
  let k = ref 0 in
  fun () ->
    incr k;
    Printf.sprintf "_tmp_s%06x_%d" h !k

(* The visited set over plans.  [`Fingerprint] buckets candidates by
   {!Expr.fingerprint} in a hashtable and runs the full structural
   {!Expr.equal} only against same-fingerprint bucket members;
   [`List] is the seed's O(n²) scan, kept for the planner ablation
   benchmark (E15). *)
module Visited = struct
  type t =
    | List of Expr.t list ref
    | Table of (int, (Expr.Fingerprint.t * Expr.t) list) Hashtbl.t

  let create = function
    | `List -> List (ref [])
    | `Fingerprint -> Table (Hashtbl.create 64)

  (* [add t e] is true when [e] was not seen before (and records it). *)
  let add t e =
    match t with
    | List seen ->
        if List.exists (Expr.equal e) !seen then false
        else begin
          seen := e :: !seen;
          true
        end
    | Table tbl ->
        let fp = Expr.fingerprint e in
        let bucket =
          Option.value ~default:[] (Hashtbl.find_opt tbl fp.Expr.Fingerprint.hash)
        in
        if
          List.exists
            (fun (fp', e') -> Expr.Fingerprint.equal fp fp' && Expr.equal e e')
            bucket
        then false
        else begin
          Hashtbl.replace tbl fp.Expr.Fingerprint.hash ((fp, e) :: bucket);
          true
        end
end

let default_objective c = Cost.weighted c

let optimize ~env ~ctx ?(objective = default_objective)
    ?(visited : visited_impl = `Fingerprint) ?peers strategy expr =
  let peers =
    match peers with
    | Some ps -> ps
    | None -> Axml_net.Topology.peers env.Cost.topology
  in
  let cost_of e = Cost.of_expr env ~ctx e in
  let initial_cost = cost_of expr in
  let explored = ref 1 in
  let expansions = ref 0 in
  let expand e =
    incr expansions;
    Rewrite.everywhere ~peers ~fresh:(fresh_for e) e
  in
  (* Paths accumulate reversed (cons per step); reversed once when a
     result is built — the seed's [trace @ [step]] was quadratic. *)
  let finish (plan, cost, rev_trace) =
    let r =
      {
        plan;
        cost;
        initial_cost;
        explored = !explored;
        expansions = !expansions;
        trace = List.rev rev_trace;
      }
    in
    (* Observability: one instant per accepted rewrite step of the
       winning plan, tagged with the rule that produced it (the
       search's causal record, on the planner's wall clock), plus
       search-volume counters. *)
    (if Trace.enabled () then
       let peer = Axml_net.Peer_id.to_string ctx in
       List.iter
         (fun (s : step) ->
           Trace.instant
             ~args:
               [
                 ("cost_bytes", string_of_int s.cost.Cost.bytes);
                 ("cost_messages", string_of_int s.cost.Cost.messages);
               ]
             ~cat:"rewrite" ~peer ~ts:(Trace.wall_ms ()) s.rule)
         r.trace);
    if Metrics.is_on Metrics.default then begin
      let peer = Axml_net.Peer_id.to_string ctx in
      Metrics.incr Metrics.default ~peer ~by:r.explored ~subsystem:"plan"
        "explored";
      Metrics.incr Metrics.default ~peer ~by:r.expansions ~subsystem:"plan"
        "expansions";
      Metrics.incr Metrics.default ~peer ~by:(List.length r.trace)
        ~subsystem:"plan" "rewrite_steps"
    end;
    r
  in
  match strategy with
  | Greedy { max_steps } ->
      let rec descend current current_cost rev_trace steps =
        if steps >= max_steps then (current, current_cost, rev_trace)
        else begin
          let candidates = expand current in
          explored := !explored + List.length candidates;
          let best =
            List.fold_left
              (fun acc (r : Rewrite.rewrite) ->
                let c = cost_of r.result in
                match acc with
                | Some (_, _, best_c) when objective c >= objective best_c ->
                    acc
                | Some _ | None ->
                    if objective c < objective current_cost then
                      Some (r.rule, r.result, c)
                    else acc)
              None candidates
          in
          match best with
          | None -> (current, current_cost, rev_trace)
          | Some (rule, next, c) ->
              descend next c ({ rule; cost = c } :: rev_trace) (steps + 1)
        end
      in
      finish (descend expr initial_cost [] 0)
  | Exhaustive { depth } ->
      (* Breadth-first enumeration of the rewrite closure; remember
         the cheapest plan and the rule path that produced it. *)
      let seen = Visited.create visited in
      ignore (Visited.add seen expr);
      let best = ref (expr, initial_cost, []) in
      let frontier = ref [ (expr, []) ] in
      let level = ref 0 in
      while !level < depth && !frontier <> [] do
        incr level;
        let next_frontier = ref [] in
        List.iter
          (fun (e, rev_path) ->
            List.iter
              (fun (r : Rewrite.rewrite) ->
                if Visited.add seen r.result then begin
                  incr explored;
                  let c = cost_of r.result in
                  let rev_path = { rule = r.rule; cost = c } :: rev_path in
                  let _, best_c, _ = !best in
                  if objective c < objective best_c then
                    best := (r.result, c, rev_path);
                  next_frontier := (r.result, rev_path) :: !next_frontier
                end)
              (expand e))
          !frontier;
        frontier := !next_frontier
      done;
      finish !best
  | Best_first { max_expansions } ->
      (* Cheapest-first search on the cost objective: pop the best
         unexpanded plan, generate its rewrites, push the unseen ones.
         The priority queue is the simulator's pairing heap
         ({!Axml_net.Pqueue}); insertion order breaks objective ties,
         which keeps runs deterministic.

         Pure cheapest-first starves on this rewrite system: rules
         like (14) with the evaluating peer itself are cost-neutral,
         so the closure contains unbounded plateaus at the current
         minimum, and a marginally costlier plan whose children hold
         the real optimum is never popped no matter the budget.  Each
         queue entry therefore carries a slack counter — reset on
         strict improvement over the parent, decremented on plateau or
         uphill steps — and chains that fail to improve for
         [plateau_limit] consecutive steps are not re-enqueued (their
         costs still count toward the best plan found). *)
      let plateau_limit = 4 in
      let seen = Visited.create visited in
      ignore (Visited.add seen expr);
      let queue = Axml_net.Pqueue.create () in
      Axml_net.Pqueue.push queue
        ~time:(objective initial_cost)
        (expr, initial_cost, [], plateau_limit);
      let best = ref (expr, initial_cost, []) in
      let continue = ref true in
      while !continue && !expansions < max_expansions do
        match Axml_net.Pqueue.pop queue with
        | None -> continue := false
        | Some (_, (e, e_cost, rev_path, slack)) ->
            List.iter
              (fun (r : Rewrite.rewrite) ->
                if Visited.add seen r.result then begin
                  incr explored;
                  let c = cost_of r.result in
                  let rev_path = { rule = r.rule; cost = c } :: rev_path in
                  let _, best_c, _ = !best in
                  if objective c < objective best_c then
                    best := (r.result, c, rev_path);
                  let slack =
                    if objective c < objective e_cost then plateau_limit
                    else slack - 1
                  in
                  if slack >= 0 then
                    Axml_net.Pqueue.push queue ~time:(objective c)
                      (r.result, c, rev_path, slack)
                end)
              (expand e)
      done;
      finish !best
  | Beam { width; depth } ->
      (* Level-synchronous like Exhaustive, but each level keeps only
         the [width] cheapest new plans as the next frontier. *)
      let seen = Visited.create visited in
      ignore (Visited.add seen expr);
      let best = ref (expr, initial_cost, []) in
      let frontier = ref [ (expr, []) ] in
      let level = ref 0 in
      while !level < depth && !frontier <> [] do
        incr level;
        let next = ref [] in
        List.iter
          (fun (e, rev_path) ->
            List.iter
              (fun (r : Rewrite.rewrite) ->
                if Visited.add seen r.result then begin
                  incr explored;
                  let c = cost_of r.result in
                  let rev_path = { rule = r.rule; cost = c } :: rev_path in
                  let _, best_c, _ = !best in
                  if objective c < objective best_c then
                    best := (r.result, c, rev_path);
                  next := (objective c, (r.result, rev_path)) :: !next
                end)
              (expand e))
          !frontier;
        (* Stable sort on the generation-ordered list: among equal
           objectives, earlier-generated plans win — deterministic. *)
        let ranked =
          List.stable_sort
            (fun (a, _) (b, _) -> Float.compare a b)
            (List.rev !next)
        in
        frontier :=
          List.filteri (fun i _ -> i < width) ranked |> List.map snd
      done;
      finish !best

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>initial: %a@ best:    %a@ explored %d plans (%d expansions), %d \
     rewrite steps@ "
    Cost.pp r.initial_cost Cost.pp r.cost r.explored r.expansions
    (List.length r.trace);
  List.iter
    (fun s -> Format.fprintf fmt "  %s -> %a@ " s.rule Cost.pp s.cost)
    r.trace;
  Format.fprintf fmt "plan: %a@]" Expr.pp r.plan
