module Tree = Axml_xml.Tree
module Label = Axml_xml.Label
module Forest = Axml_xml.Forest

type estimate = { cardinality : int; bytes : int }

let oracle ~gen q inputs =
  let out = Eval.eval ~gen q inputs in
  { cardinality = List.length out; bytes = Forest.byte_size out }

module Stats = struct
  module Lmap = Map.Make (Label)

  type t = {
    counts : int Lmap.t;
    bytes : int Lmap.t;  (** Total subtree bytes per label. *)
    total_nodes : int;
    total_bytes : int;
  }

  let of_forest f =
    let counts = ref Lmap.empty and bytes = ref Lmap.empty in
    let nodes = ref 0 in
    let visit t =
      incr nodes;
      match t with
      | Tree.Element e ->
          let add m k v =
            m := Lmap.update k (fun x -> Some (v + Option.value ~default:0 x)) !m
          in
          add counts e.label 1;
          add bytes e.label (Tree.byte_size t)
      | Tree.Text _ -> ()
    in
    List.iter (fun t -> Tree.iter visit t) f;
    {
      counts = !counts;
      bytes = !bytes;
      total_nodes = !nodes;
      total_bytes = Forest.byte_size f;
    }

  (* Same shape as [of_forest], but read off a structural index's
     build-pass statistics — exact, and O(labels) instead of a
     document walk. *)
  let of_index ix =
    let counts, bytes =
      List.fold_left
        (fun (c, b) (l, n, sub) -> (Lmap.add l n c, Lmap.add l sub b))
        (Lmap.empty, Lmap.empty)
        (Axml_xml.Index.label_stats ix)
    in
    {
      counts;
      bytes;
      total_nodes = Axml_xml.Index.total_nodes ix;
      total_bytes = Axml_xml.Index.total_bytes ix;
    }

  let label_count t l = Option.value ~default:0 (Lmap.find_opt l t.counts)

  let avg_bytes t l =
    let n = label_count t l in
    if n = 0 then 0 else Option.value ~default:0 (Lmap.find_opt l t.bytes) / n

  let total_nodes t = t.total_nodes
  let total_bytes t = t.total_bytes
end

let eq_selectivity = 0.1
let range_selectivity = 0.33

let pred_factor pred =
  let rec factor = function
    | Ast.True -> 1.0
    | Ast.Cmp (_, (Ast.Eq | Ast.Neq), _) -> eq_selectivity
    | Ast.Cmp (_, (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Contains), _) ->
        range_selectivity
    | Ast.Exists _ -> 0.5
    | Ast.And (a, b) -> factor a *. factor b
    | Ast.Or (a, b) -> min 1.0 (factor a +. factor b)
    | Ast.Not p -> max 0.0 (1.0 -. factor p)
  in
  factor pred

(* Estimated number of nodes a path step reaches, per source node, from
   label statistics: a named step reaches (count of that label) spread
   over the source cardinality; a wildcard reaches the average fanout. *)
let path_estimate (stats : Stats.t) path start_card =
  List.fold_left
    (fun card (step : Ast.step) ->
      match step.test with
      | Ast.Name l -> min (float_of_int (Stats.label_count stats l)) (card *. float_of_int (max 1 (Stats.label_count stats l)))
      | Ast.Any_elt ->
          card *. (float_of_int (Stats.total_nodes stats) /. 10.0 |> max 1.0))
    start_card path

let rec last_label = function
  | [] -> None
  | [ (step : Ast.step) ] -> (
      match step.test with Ast.Name l -> Some l | Ast.Any_elt -> None)
  | _ :: rest -> last_label rest

let sketch_flwr (q : Ast.flwr) (stats : Stats.t list) =
  let stats = Array.of_list stats in
  let stat_for (b : Ast.binding) =
    match b.source with
    | Ast.Input i when i < Array.length stats -> Some stats.(i)
    | Ast.Input _ | Ast.Var _ -> None
  in
  let card =
    List.fold_left
      (fun acc b ->
        match stat_for b with
        | Some st -> acc *. max 1.0 (path_estimate st b.path 1.0)
        | None ->
            (* Variable-rooted bindings fan out modestly. *)
            acc *. 2.0)
      1.0 q.bindings
  in
  let card = card *. pred_factor q.where in
  (* Output bytes: constructed literal shell plus, for each copied
     variable, the average subtree size of the label its binding path
     ends with. *)
  let copied_bytes =
    List.fold_left
      (fun acc v ->
        let binding =
          List.find_opt (fun (b : Ast.binding) -> b.var = v) q.bindings
        in
        match binding with
        | None -> acc
        | Some b -> (
            match (stat_for b, last_label b.path) with
            | Some st, Some l -> acc + max 16 (Stats.avg_bytes st l)
            | Some st, None -> acc + (Stats.total_bytes st / max 1 (Stats.total_nodes st))
            | None, _ -> acc + 64))
      0
      (Ast.construct_vars q.return_)
  in
  let per_result = 32 + copied_bytes in
  {
    cardinality = int_of_float (Float.round card);
    bytes = int_of_float (Float.round (card *. float_of_int per_result));
  }

let rec sketch (q : Ast.t) stats =
  match q with
  | Ast.Flwr f -> sketch_flwr f stats
  | Ast.Compose (head, subs) ->
      let intermediates = List.map (fun sub -> sketch sub stats) subs in
      (* Build synthetic stats for intermediates: we only know their
         size; approximate with a flat one-label forest. *)
      let synth (e : estimate) =
        let f =
          if e.cardinality <= 0 then []
          else
            let gen = Axml_xml.Node_id.Gen.create ~namespace:"sketch" in
            let payload =
              String.make (max 1 (e.bytes / max 1 e.cardinality)) 'x'
            in
            List.init (min e.cardinality 64) (fun _ ->
                Tree.element ~gen (Label.of_string "item") [ Tree.text payload ])
        in
        Stats.of_forest f
      in
      sketch_flwr head (List.map synth intermediates)
