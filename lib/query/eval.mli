(** Query evaluation.

    Evaluates a query over a list of input forests, producing an output
    forest.  This is the "usual sense" evaluation of definition (2) of
    the paper; continuous evaluation over streams is derived from it in
    {!module:Incremental}. *)

val path_select : Ast.path -> Axml_xml.Tree.t list -> Axml_xml.Tree.t list
(** Nodes reached from the roots of a forest by a path.  The empty
    path selects the roots themselves. *)

val eval :
  gen:Axml_xml.Node_id.Gen.t ->
  Ast.t ->
  Axml_xml.Forest.t list ->
  Axml_xml.Forest.t
(** [eval ~gen q inputs] evaluates [q].  Constructed elements and
    copies receive fresh identifiers from [gen].
    @raise Invalid_argument if [List.length inputs <> Ast.arity q] or
    the query is ill-formed (see {!Ast.check}). *)

val eval_tree :
  gen:Axml_xml.Node_id.Gen.t -> Ast.t -> Axml_xml.Tree.t -> Axml_xml.Forest.t
(** Unary convenience: [eval ~gen q [[t]]]. *)

val compare_values : Ast.cmp -> string -> string -> bool
(** XPath-1.0-style weak-typed comparison: ordering operators compare
    numerically when both sides parse as numbers, as strings
    otherwise; [Contains] is pure substring search.  Shared with the
    compiled engine ({!Compile}) so both arms agree exactly. *)

val holds : Ast.pred -> (string * Axml_xml.Tree.t) list -> bool
(** Predicate evaluation under an environment binding variables to
    nodes.  Exposed for tests and for the optimizer's selectivity
    estimation. *)

val eval_counted :
  gen:Axml_xml.Node_id.Gen.t ->
  Ast.t ->
  Axml_xml.Forest.t list ->
  Axml_xml.Forest.t * int
(** Like {!eval} (unchecked), additionally returning the number of
    binding extensions enumerated — the work metric binding
    reordering ({!module:Optimize}) reduces.  Conjuncts of the [where]
    clause are applied as soon as their variables are bound, so an
    early selective binding prunes the count. *)
