(** Result-size estimation.

    The optimizer of {!module:Axml_algebra} compares plans by the
    volume of data each one ships.  This module estimates the output
    cardinality and byte size of a query over given inputs.

    Two estimators are provided: an {e oracle} that actually evaluates
    the query (exact, usable in the simulator where all data is
    locally reachable), and a {e sketch} estimator that works from
    per-label statistics only — the realistic setting in which a peer
    knows summary statistics about remote documents but not their
    content. *)

type estimate = { cardinality : int; bytes : int }

val oracle :
  gen:Axml_xml.Node_id.Gen.t ->
  Ast.t ->
  Axml_xml.Forest.t list ->
  estimate
(** Exact: evaluates the query. *)

(** Per-document statistics: label histogram and average subtree
    size per label. *)
module Stats : sig
  type t

  val of_forest : Axml_xml.Forest.t -> t

  (** Exact statistics read off a structural index (accumulated during
      its build pass) — no document walk. *)
  val of_index : Axml_xml.Index.t -> t
  val label_count : t -> Axml_xml.Label.t -> int
  val avg_bytes : t -> Axml_xml.Label.t -> int
  val total_nodes : t -> int
  val total_bytes : t -> int
end

val sketch : Ast.t -> Stats.t list -> estimate
(** Statistics-only estimate.  Bindings multiply estimated match
    counts; each comparison predicate applies a constant selectivity
    factor (0.1, the classical System-R default for equality; 0.33 for
    inequalities); output bytes scale with the constructed shape. *)
