module Tree = Axml_xml.Tree
module Label = Axml_xml.Label

let test_matches test t =
  match (test, t) with
  | Ast.Any_elt, Tree.Element _ -> true
  | Ast.Name l, Tree.Element e -> Label.equal e.label l
  | _, Tree.Text _ -> false

(* Preorder collection with an accumulator (prepend, reverse once at
   the caller) — list append per node would be quadratic in depth. *)
let rec descendants_matching_acc test acc t =
  let acc = if test_matches test t then t :: acc else acc in
  List.fold_left (descendants_matching_acc test) acc (Tree.children t)

let step_select (step : Ast.step) nodes =
  match step.axis with
  | Ast.Child ->
      List.concat_map
        (fun n -> List.filter (test_matches step.test) (Tree.children n))
        nodes
  | Ast.Descendant ->
      List.concat_map
        (fun n ->
          List.rev
            (List.fold_left
               (descendants_matching_acc step.test)
               [] (Tree.children n)))
        nodes

let path_select path roots =
  List.fold_left (fun nodes s -> step_select s nodes) roots path

let operand_value env = function
  | Ast.Const s -> Some s
  | Ast.Number f ->
      Some
        (if Float.is_integer f then Printf.sprintf "%.0f" f
         else Printf.sprintf "%g" f)
  | Ast.Text_of v ->
      List.assoc_opt v env |> Option.map Tree.text_content
  | Ast.Attr_of (v, a) ->
      Option.bind (List.assoc_opt v env) (fun t -> Tree.attr t a)

(* Comparison follows the weak-typing convention of XPath 1.0: if both
   sides parse as numbers, compare numerically, otherwise as strings.
   The numeric parse only happens for ordering operators — [Contains]
   is a pure string operation and skips it. *)
let compare_values op a b =
  let ord () =
    let num s = float_of_string_opt (String.trim s) in
    match (num a, num b) with
    | Some x, Some y -> Float.compare x y
    | (Some _ | None), _ -> String.compare a b
  in
  match op with
  | Ast.Eq -> ord () = 0
  | Ast.Neq -> ord () <> 0
  | Ast.Lt -> ord () < 0
  | Ast.Le -> ord () <= 0
  | Ast.Gt -> ord () > 0
  | Ast.Ge -> ord () >= 0
  | Ast.Contains ->
      let la = String.length a and lb = String.length b in
      let rec scan i = i + lb <= la && (String.sub a i lb = b || scan (i + 1)) in
      lb = 0 || scan 0

let rec holds pred env =
  match pred with
  | Ast.True -> true
  | Ast.Cmp (a, op, b) -> (
      match (operand_value env a, operand_value env b) with
      | Some va, Some vb -> compare_values op va vb
      | (Some _ | None), _ -> false)
  | Ast.Exists (v, path) -> (
      match List.assoc_opt v env with
      | None -> false
      | Some t -> path_select path [ t ] <> [])
  | Ast.And (a, b) -> holds a env && holds b env
  | Ast.Or (a, b) -> holds a env || holds b env
  | Ast.Not p -> not (holds p env)

let rec instantiate ~gen env = function
  | Ast.Text s -> [ Tree.text s ]
  | Ast.Copy_of v -> (
      match List.assoc_opt v env with
      | None -> []
      | Some t -> [ Tree.copy ~gen t ])
  | Ast.Content_of v -> (
      match List.assoc_opt v env with
      | None -> []
      | Some t -> [ Tree.text (Tree.text_content t) ])
  | Ast.Attr_content (v, a) -> (
      match Option.bind (List.assoc_opt v env) (fun t -> Tree.attr t a) with
      | None -> []
      | Some value -> [ Tree.text value ])
  | Ast.Elem { label; attrs; children } ->
      let kids = List.concat_map (instantiate ~gen env) children in
      [ Tree.element ~attrs ~gen label kids ]

(* Assign each top-level conjunct of the [where] clause to the
   earliest binding position at which all its variables are bound, so
   filters prune the enumeration as soon as possible.  Disjunctions
   and negations are single conjuncts and wait for their own variable
   sets; the residual [True] applies at the end. *)
let conjunct_schedule (q : Ast.flwr) =
  let positions =
    List.mapi (fun i (b : Ast.binding) -> (b.var, i + 1)) q.bindings
  in
  let slot conjunct =
    List.fold_left
      (fun acc v ->
        match List.assoc_opt v positions with
        | Some p -> max acc p
        | None -> acc)
      0
      (Ast.pred_vars conjunct)
  in
  let n = List.length q.bindings in
  let schedule = Array.make (n + 1) [] in
  List.iter
    (fun conjunct ->
      let s = slot conjunct in
      schedule.(s) <- conjunct :: schedule.(s))
    (Ast.conjuncts q.where);
  Array.map List.rev schedule

let eval_flwr_counted ~gen (q : Ast.flwr) (inputs : Axml_xml.Forest.t list) =
  let inputs = Array.of_list inputs in
  let schedule = conjunct_schedule q in
  let tuples = ref 0 in
  (* Enumerate binding tuples depth-first, in binding order, checking
     each conjunct as soon as its variables are available. *)
  let rec bind env position = function
    | [] -> instantiate ~gen env q.return_
    | (b : Ast.binding) :: rest ->
        let roots =
          match b.source with
          | Ast.Input i -> inputs.(i)
          | Ast.Var v -> (
              match List.assoc_opt v env with Some t -> [ t ] | None -> [])
        in
        let nodes = path_select b.path roots in
        List.concat_map
          (fun n ->
            incr tuples;
            let env = (b.var, n) :: env in
            if List.for_all (fun p -> holds p env) schedule.(position + 1) then
              bind env (position + 1) rest
            else [])
          nodes
  in
  let out =
    if List.for_all (fun p -> holds p []) schedule.(0) then
      bind [] 0 q.bindings
    else []
  in
  (out, !tuples)

let eval_flwr ~gen q inputs = fst (eval_flwr_counted ~gen q inputs)

let rec eval ~gen (q : Ast.t) inputs =
  (match Ast.check q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Query.eval: " ^ msg));
  if List.length inputs <> Ast.arity q then
    invalid_arg
      (Printf.sprintf "Query.eval: arity mismatch (query %d, inputs %d)"
         (Ast.arity q) (List.length inputs));
  eval_checked ~gen q inputs

and eval_checked ~gen q inputs =
  match q with
  | Ast.Flwr f -> eval_flwr ~gen f inputs
  | Ast.Compose (head, subs) ->
      let intermediates =
        List.map (fun sub -> eval_checked ~gen sub inputs) subs
      in
      eval_flwr ~gen head intermediates

let eval_tree ~gen q t = eval ~gen q [ [ t ] ]

let rec eval_counted ~gen q inputs =
  match q with
  | Ast.Flwr f -> eval_flwr_counted ~gen f inputs
  | Ast.Compose (head, subs) ->
      let intermediates, counts =
        List.split (List.map (fun sub -> eval_counted ~gen sub inputs) subs)
      in
      let out, head_count = eval_flwr_counted ~gen head intermediates in
      (out, head_count + List.fold_left ( + ) 0 counts)
