module Metrics = Axml_obs.Metrics
module Timeseries = Axml_obs.Timeseries

type fingerprint = { hash : int; size : int; depth : int }

let fp_equal a b = a.hash = b.hash && a.size = b.size && a.depth = b.depth

type 'e entry = {
  e_fp : fingerprint;
  e_expr : 'e;
  e_deps : (string * string * int) array;
  e_forest : Axml_xml.Forest.t;
  mutable e_tick : int;  (* last-probed clock, for LRU eviction *)
}

type stats = {
  hits : int;
  misses : int;
  collisions : int;
  stale_drops : int;
  invalidations : int;
  installs : int;
  evictions : int;
}

let zero_stats =
  {
    hits = 0;
    misses = 0;
    collisions = 0;
    stale_drops = 0;
    invalidations = 0;
    installs = 0;
    evictions = 0;
  }

let add_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    collisions = a.collisions + b.collisions;
    stale_drops = a.stale_drops + b.stale_drops;
    invalidations = a.invalidations + b.invalidations;
    installs = a.installs + b.installs;
    evictions = a.evictions + b.evictions;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "hits=%d misses=%d collisions=%d stale=%d invalidated=%d installs=%d \
     evictions=%d"
    s.hits s.misses s.collisions s.stale_drops s.invalidations s.installs
    s.evictions

type 'e t = {
  equal : 'e -> 'e -> bool;
  capacity : int;
  buckets : (int, 'e entry list ref) Hashtbl.t;  (* by fingerprint hash *)
  by_dep : (string, 'e entry list ref) Hashtbl.t;  (* by "peer/doc" *)
  mutable entries : int;
  mutable clock : int;
  mutable s : stats;
  m_hits : Metrics.counter_handle option;
  m_misses : Metrics.counter_handle option;
  m_collisions : Metrics.counter_handle option;
  m_stale : Metrics.counter_handle option;
  m_invalidations : Metrics.counter_handle option;
  m_installs : Metrics.counter_handle option;
  m_evictions : Metrics.counter_handle option;
  ts_key : string option;  (* "qcache/<owner>/hits" etc. *)
}

let create ?(capacity = 256) ?owner ~equal () =
  if capacity < 1 then invalid_arg "Qcache.create: capacity < 1";
  let handle name =
    match owner with
    | None -> None
    | Some peer ->
        Some (Metrics.counter_handle Metrics.default ~peer ~subsystem:"qcache" name)
  in
  {
    equal;
    capacity;
    buckets = Hashtbl.create 64;
    by_dep = Hashtbl.create 64;
    entries = 0;
    clock = 0;
    s = zero_stats;
    m_hits = handle "hits";
    m_misses = handle "misses";
    m_collisions = handle "collisions";
    m_stale = handle "stale_drops";
    m_invalidations = handle "invalidations";
    m_installs = handle "installs";
    m_evictions = handle "evictions";
    ts_key = Option.map (fun o -> "qcache/" ^ o ^ "/") owner;
  }

let bump h =
  if Metrics.is_on Metrics.default then
    Option.iter (fun h -> Metrics.incr_h h ~by:1) h

let series t name =
  match t.ts_key with
  | Some prefix when Timeseries.is_on Timeseries.default ->
      Timeseries.record
        (Timeseries.handle Timeseries.default (prefix ^ name))
        1.0
  | _ -> ()

let note_hit t =
  t.s <- { t.s with hits = t.s.hits + 1 };
  bump t.m_hits;
  series t "hits"

let note_miss t =
  t.s <- { t.s with misses = t.s.misses + 1 };
  bump t.m_misses;
  series t "misses"

let record_hit t = note_hit t

let dep_key ~peer ~doc = peer ^ "/" ^ doc

(* Remove [e] (by physical identity) from both indexes. *)
let unlink t e =
  let strip cell = cell := List.filter (fun e' -> e' != e) !cell in
  (match Hashtbl.find_opt t.buckets e.e_fp.hash with
  | Some cell ->
      strip cell;
      if !cell = [] then Hashtbl.remove t.buckets e.e_fp.hash
  | None -> ());
  Array.iter
    (fun (p, d, _) ->
      let key = dep_key ~peer:p ~doc:d in
      match Hashtbl.find_opt t.by_dep key with
      | Some cell ->
          strip cell;
          if !cell = [] then Hashtbl.remove t.by_dep key
      | None -> ())
    e.e_deps;
  t.entries <- t.entries - 1

let drop_stale t e =
  unlink t e;
  t.s <- { t.s with stale_drops = t.s.stale_drops + 1 };
  bump t.m_stale;
  series t "stale_drops"

let fresh e ~current =
  Array.for_all
    (fun (p, d, v) ->
      match current ~peer:p ~doc:d with Some v' -> v' = v | None -> false)
    e.e_deps

let find_entry t ~fp ~expr ~current =
  match Hashtbl.find_opt t.buckets fp.hash with
  | None -> None
  | Some cell ->
      let rec scan = function
        | [] -> None
        | e :: rest ->
            if not (fp_equal e.e_fp fp) then scan rest
            else if not (t.equal e.e_expr expr) then begin
              t.s <- { t.s with collisions = t.s.collisions + 1 };
              bump t.m_collisions;
              series t "collisions";
              scan rest
            end
            else if fresh e ~current then begin
              t.clock <- t.clock + 1;
              e.e_tick <- t.clock;
              Some e.e_forest
            end
            else begin
              drop_stale t e;
              scan rest
            end
      in
      scan !cell

let probe t ~fp ~expr ~current = find_entry t ~fp ~expr ~current

let find t ~fp ~expr ~current =
  match find_entry t ~fp ~expr ~current with
  | Some _ as hit ->
      note_hit t;
      hit
  | None ->
      note_miss t;
      None

let evict_lru t =
  (* O(entries) scan; capacities are small and eviction rare. *)
  let victim = ref None in
  Hashtbl.iter
    (fun _ cell ->
      List.iter
        (fun e ->
          match !victim with
          | Some v when v.e_tick <= e.e_tick -> ()
          | _ -> victim := Some e)
        !cell)
    t.buckets;
  match !victim with
  | None -> ()
  | Some e ->
      unlink t e;
      t.s <- { t.s with evictions = t.s.evictions + 1 };
      bump t.m_evictions;
      series t "evictions"

let install t ~fp ~expr ~deps ~forest =
  (* Replace any existing entry for the same expression. *)
  (match Hashtbl.find_opt t.buckets fp.hash with
  | Some cell ->
      List.iter
        (fun e -> if fp_equal e.e_fp fp && t.equal e.e_expr expr then unlink t e)
        !cell
  | None -> ());
  t.clock <- t.clock + 1;
  let e =
    { e_fp = fp; e_expr = expr; e_deps = deps; e_forest = forest; e_tick = t.clock }
  in
  let cell =
    match Hashtbl.find_opt t.buckets fp.hash with
    | Some cell -> cell
    | None ->
        let cell = ref [] in
        Hashtbl.replace t.buckets fp.hash cell;
        cell
  in
  cell := e :: !cell;
  Array.iter
    (fun (p, d, _) ->
      let key = dep_key ~peer:p ~doc:d in
      let cell =
        match Hashtbl.find_opt t.by_dep key with
        | Some cell -> cell
        | None ->
            let cell = ref [] in
            Hashtbl.replace t.by_dep key cell;
            cell
      in
      cell := e :: !cell)
    e.e_deps;
  t.entries <- t.entries + 1;
  t.s <- { t.s with installs = t.s.installs + 1 };
  bump t.m_installs;
  series t "installs";
  while t.entries > t.capacity do
    evict_lru t
  done

let invalidate_dep t ~peer ~doc =
  match Hashtbl.find_opt t.by_dep (dep_key ~peer ~doc) with
  | None -> ()
  | Some cell ->
      let victims = !cell in
      List.iter
        (fun e ->
          unlink t e;
          t.s <- { t.s with invalidations = t.s.invalidations + 1 };
          bump t.m_invalidations;
          series t "invalidations")
        victims

let clear t =
  Hashtbl.reset t.buckets;
  Hashtbl.reset t.by_dep;
  t.entries <- 0

let length t = t.entries
let stats t = t.s
