(** Compiled queries: the index-aware evaluation fast path.

    {!Eval} is the reference interpreter: assoc-list environments,
    and a full subtree traversal per descendant step.  This module
    compiles an {!Ast.t} once — variables become array slots, the
    conjunct schedule is precomputed, numeric literals are
    pre-rendered — and evaluates descendant steps against a
    structural index ({!Axml_xml.Index}) when one is available, so
    the cost of a step scales with its matches instead of the
    document.  Results, enumeration order and tuple counts are
    exactly those of {!Eval.eval} (property-tested); the interpreter
    stays available as the [Naive] engine for ablation and as the
    testing oracle.

    Metrics (on {!Axml_obs.Metrics.default}, subsystem [query]):
    [index_hits] (descendant steps served from postings),
    [index_builds], [fallback] (steps that had to traverse),
    [compile_ms] (histogram, compile-cache misses only). *)

type engine = Naive | Indexed

val set_engine : engine -> unit
(** Select the process-wide default engine (default [Indexed]). *)

val engine : unit -> engine

val engine_of_string : string -> engine option
val engine_to_string : engine -> string

val set_index_threshold : int -> unit
(** Minimum node count ({!Axml_xml.Forest.size}) before an input
    forest is worth indexing on the fly; default 128.  Set to [0] to
    force indexing (the property suites do). *)

val index_threshold : unit -> int

type t
(** A compiled query. *)

val compile : Ast.t -> t
(** Compile without caching.
    @raise Invalid_argument if the query is ill-formed. *)

val compiled : Ast.t -> t
(** Memoized {!compile} — "once per service": repeated activations of
    the same query hit the cache. *)

val eval :
  ?engine:engine ->
  gen:Axml_xml.Node_id.Gen.t ->
  Ast.t ->
  Axml_xml.Forest.t list ->
  Axml_xml.Forest.t
(** Drop-in for {!Eval.eval}: same checks, same exceptions, same
    results.  [Indexed] compiles (cached) and indexes large inputs on
    the fly; [Naive] delegates to {!Eval.eval} unchanged. *)

val eval_counted :
  ?engine:engine ->
  gen:Axml_xml.Node_id.Gen.t ->
  Ast.t ->
  Axml_xml.Forest.t list ->
  Axml_xml.Forest.t * int
(** Like {!Eval.eval_counted}: also returns the number of binding
    extensions enumerated (identical to the interpreter's count). *)

val eval_over :
  ?engine:engine ->
  gen:Axml_xml.Node_id.Gen.t ->
  Ast.t ->
  (Axml_xml.Forest.t * Axml_xml.Index.t option) list ->
  Axml_xml.Forest.t
(** Evaluate with caller-provided prebuilt indexes (a document
    store's, or a continuous query's maintained input indexes).
    [None] inputs are indexed on the fly under the usual threshold;
    unusable indexes fall back to traversal. *)
