module Index = Axml_xml.Index
module Forest = Axml_xml.Forest

type t = {
  query : Ast.t;
  seen : Axml_xml.Forest.t array;
  indexes : Index.t option array;
      (* Cached per-input structural indexes, grown by [append_roots]
         as trees arrive — so a long-lived continuous query pays
         O(subtree) per arrival, not O(everything seen) per arrival. *)
}

let create q =
  (match Ast.check q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Incremental.create: " ^ msg));
  let n = max 1 (Ast.arity q) in
  { query = q; seen = Array.make n []; indexes = Array.make n None }

let query t = t.query
let seen t i = t.seen.(i)

(* Multiset difference [full − old] by canonical fingerprints. *)
let multiset_diff full old =
  let tbl = Hashtbl.create 16 in
  let count t =
    let k = Axml_xml.Canonical.fingerprint t in
    Hashtbl.replace tbl k
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  List.iter count old;
  List.filter
    (fun t ->
      let k = Axml_xml.Canonical.fingerprint t in
      match Hashtbl.find_opt tbl k with
      | Some n when n > 0 ->
          Hashtbl.replace tbl k (n - 1);
          false
      | Some _ | None -> true)
    full

let inputs_with_indexes t =
  List.init (Ast.arity t.query) (fun j -> (t.seen.(j), t.indexes.(j)))

(* Record the arrival: grow the seen forest and keep the input's index
   current.  An append the index can't absorb (or one that tips the
   appended volume past the base) drops it; the next [extend] rebuild
   from scratch is the geometric compaction step, so maintenance stays
   amortized O(subtree). *)
let extend t ~input delta =
  t.seen.(input) <- t.seen.(input) @ delta;
  match t.indexes.(input) with
  | Some ix ->
      if (not (Index.append_roots ix delta)) || Index.needs_compaction ix then
        t.indexes.(input) <- None
  | None ->
      if
        Compile.engine () = Compile.Indexed
        && Forest.size t.seen.(input) >= Compile.index_threshold ()
      then begin
        let ix = Index.build_forest t.seen.(input) in
        t.indexes.(input) <- (if Index.usable ix then Some ix else None)
      end

(* The delta of one arriving tree.  When the query is a single FLWR
   block in which exactly one binding draws from the touched input, the
   new output tuples are exactly those whose pinned binding root lies
   in the delta — so we evaluate once with the input restricted to the
   delta.  Otherwise (several bindings on the same input, or a
   composition) we fall back to the reference semantics
   eval(after) − eval(before), a canonical multiset difference. *)
let push ~gen t ~input tree =
  if input < 0 || input >= Array.length t.seen then
    invalid_arg "Incremental.push: input out of range";
  let delta = [ tree ] in
  let single_occurrence =
    match t.query with
    | Ast.Flwr f ->
        List.length
          (List.filter
             (fun (b : Ast.binding) -> b.source = Ast.Input input)
             f.bindings)
        = 1
    | Ast.Compose _ -> false
  in
  if single_occurrence then begin
    let inputs =
      List.init (Ast.arity t.query) (fun j ->
          if j = input then (delta, None) else (t.seen.(j), t.indexes.(j)))
    in
    let out = Compile.eval_over ~gen t.query inputs in
    extend t ~input delta;
    out
  end
  else begin
    let before = Compile.eval_over ~gen t.query (inputs_with_indexes t) in
    extend t ~input delta;
    let after = Compile.eval_over ~gen t.query (inputs_with_indexes t) in
    multiset_diff after before
  end

let push_forest ~gen t ~input forest =
  List.concat_map (fun tree -> push ~gen t ~input tree) forest

let total_output ~gen t =
  Compile.eval_over ~gen t.query (inputs_with_indexes t)
