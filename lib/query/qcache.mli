(** Per-peer semantic result cache (cross-plan rule (13)).

    DXQ-style query networks let inner nodes cache and combine
    results; rules (12)/(13) are the algebraic version of the same
    idea, but within a single plan.  This cache extends the sharing
    across plans: an entry maps a planner expression fingerprint to
    the lforest the expression evaluated to, so a later plan — from
    the same peer, possibly a different query — whose subplan matches
    a live entry reads the materialized result instead of
    re-evaluating (and, for remote subplans, instead of re-shipping).

    The module is parametric in the expression type so it can live
    below {!Axml_algebra} in the dependency order: callers supply the
    structural [equal] and the {!fingerprint} summary (mirroring
    [Expr.Fingerprint.t]).

    {2 Keying and collision hardening}

    Entries are bucketed by fingerprint hash.  A probe first matches
    the full fingerprint (hash, size, depth), then verifies structural
    [equal] before serving — a same-fingerprint, structurally distinct
    expression is counted under [collisions] and never aliases the
    entry.

    {2 Invalidation}

    Every entry is pinned to the doc-version vector it was computed
    against: one [(peer, doc, version)] triple per document the
    expression reads (versions are the global monotonic stamps of
    {!Axml_doc.Store}, never reused — a crash-restart reload gets
    fresh stamps, so checkpoint-restored documents can never
    revalidate a pre-crash entry).  A probe revalidates each pin
    through the [current] callback; any mismatch (or vanished
    document) drops the entry — stale results are dropped, never
    served.  Mutations on the owning peer's own store additionally
    invalidate eagerly through {!invalidate_dep} (wired from the
    store's mutation hook), keeping the cache small without waiting
    for a probe. *)

(** Mirror of [Axml_algebra.Expr.Fingerprint.t] (the dependency order
    forbids referencing it directly). *)
type fingerprint = { hash : int; size : int; depth : int }

type 'e t

val create :
  ?capacity:int -> ?owner:string -> equal:('e -> 'e -> bool) -> unit -> 'e t
(** [capacity] bounds live entries (default 256); beyond it the
    least-recently-probed entry is evicted.  [owner] names the peer in
    {!Axml_obs.Metrics} / {!Axml_obs.Timeseries} emission (subsystem
    ["qcache"]); omitted, the cache stays telemetry-silent. *)

val find :
  'e t ->
  fp:fingerprint ->
  expr:'e ->
  current:(peer:string -> doc:string -> int option) ->
  Axml_xml.Forest.t option
(** Probe for a live entry matching [expr].  [current] reports the
    present version stamp of a document (None if absent); every pin of
    a candidate entry must match exactly or the entry is dropped
    ([stale_drops]) and the probe misses.  The returned forest is the
    stored value — callers must [Forest.copy ~gen] before emitting it
    so node identifiers stay fresh. *)

val install :
  'e t ->
  fp:fingerprint ->
  expr:'e ->
  deps:(string * string * int) array ->
  forest:Axml_xml.Forest.t ->
  unit
(** Install (or refresh) the entry for [expr].  [deps] is the pinned
    [(peer, doc, version)] vector captured {e before} evaluation began
    and revalidated unchanged at completion — the caller's
    responsibility; installing against versions read after evaluation
    would pin a torn snapshot. *)

val invalidate_dep : 'e t -> peer:string -> doc:string -> unit
(** Drop every entry pinned to [(peer, doc)] — the eager path, driven
    by the owning store's mutation hook. *)

val record_hit : 'e t -> unit
(** Count a hit that was served outside {!find}'s accounting — the
    plan-rewrite probe runs with [find] counters suppressed (the
    evaluator would otherwise double-count the same subplan), then
    records its hits here. *)

val probe :
  'e t ->
  fp:fingerprint ->
  expr:'e ->
  current:(peer:string -> doc:string -> int option) ->
  Axml_xml.Forest.t option
(** {!find} without hit/miss accounting (stale drops and collisions
    still count — they are real events).  For plan-rewrite probes; see
    {!record_hit}. *)

val clear : 'e t -> unit
val length : 'e t -> int

type stats = {
  hits : int;
  misses : int;
  collisions : int;  (** Same fingerprint, [equal] said no. *)
  stale_drops : int;  (** Entries dropped on probe-time revalidation. *)
  invalidations : int;  (** Entries dropped by {!invalidate_dep}. *)
  installs : int;
  evictions : int;
}

val stats : 'e t -> stats

val add_stats : stats -> stats -> stats
val zero_stats : stats
val pp_stats : Format.formatter -> stats -> unit
