module Tree = Axml_xml.Tree
module Label = Axml_xml.Label
module Forest = Axml_xml.Forest
module Index = Axml_xml.Index
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace

type engine = Naive | Indexed

let default_engine = ref Indexed
let set_engine e = default_engine := e
let engine () = !default_engine

let engine_of_string = function
  | "naive" -> Some Naive
  | "indexed" -> Some Indexed
  | _ -> None

let engine_to_string = function Naive -> "naive" | Indexed -> "indexed"

let threshold = ref 128
let set_index_threshold n = threshold := max 0 n
let index_threshold () = !threshold

(* --- compiled form ----------------------------------------------- *)

type source = Input of int | Var of int

type operand =
  | Const of string  (** Numbers are pre-rendered at compile time. *)
  | Text_of of int
  | Attr_of of int * string

type pred =
  | True
  | Cmp of operand * Ast.cmp * operand
  | Exists of int * Ast.path
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type construct =
  | Text of string
  | Copy_of of int
  | Content_of of int
  | Attr_content of int * string
  | Elem of {
      label : Label.t;
      attrs : (string * string) list;
      children : construct list;
    }

type flwr = {
  arity : int;
  nvars : int;
  bindings : (source * Ast.path) array;
  schedule : pred list array;
      (** [schedule.(k)]: conjuncts checked once the first [k]
          bindings are set — same assignment as
          [Eval.conjunct_schedule]. *)
  wants_index : bool;
  return_ : construct;
}

type t = Flwr of flwr | Compose of flwr * t list

(* --- compilation ------------------------------------------------- *)

let render_number f =
  if Float.is_integer f then Printf.sprintf "%.0f" f else Printf.sprintf "%g" f

let slot_of positions v =
  match List.assoc_opt v positions with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Compile: unbound variable %s" v)

let compile_operand positions = function
  | Ast.Const s -> Const s
  | Ast.Number f -> Const (render_number f)
  | Ast.Text_of v -> Text_of (slot_of positions v)
  | Ast.Attr_of (v, a) -> Attr_of (slot_of positions v, a)

let rec compile_pred positions = function
  | Ast.True -> True
  | Ast.Cmp (a, op, b) ->
      Cmp (compile_operand positions a, op, compile_operand positions b)
  | Ast.Exists (v, path) -> Exists (slot_of positions v, path)
  | Ast.And (a, b) -> And (compile_pred positions a, compile_pred positions b)
  | Ast.Or (a, b) -> Or (compile_pred positions a, compile_pred positions b)
  | Ast.Not p -> Not (compile_pred positions p)

let rec compile_construct positions = function
  | Ast.Text s -> Text s
  | Ast.Copy_of v -> Copy_of (slot_of positions v)
  | Ast.Content_of v -> Content_of (slot_of positions v)
  | Ast.Attr_content (v, a) -> Attr_content (slot_of positions v, a)
  | Ast.Elem { label; attrs; children } ->
      Elem { label; attrs; children = List.map (compile_construct positions) children }

let path_descends path =
  List.exists (fun (s : Ast.step) -> s.axis = Ast.Descendant) path

let rec pred_descends = function
  | Ast.True | Ast.Cmp _ -> false
  | Ast.Exists (_, path) -> path_descends path
  | Ast.And (a, b) | Ast.Or (a, b) -> pred_descends a || pred_descends b
  | Ast.Not p -> pred_descends p

let compile_flwr (q : Ast.flwr) =
  let positions =
    List.mapi (fun i (b : Ast.binding) -> (b.var, i)) q.bindings
  in
  let bindings =
    Array.of_list
      (List.map
         (fun (b : Ast.binding) ->
           let src =
             match b.source with
             | Ast.Input i -> Input i
             | Ast.Var v -> Var (slot_of positions v)
           in
           (src, b.path))
         q.bindings)
  in
  (* Same slotting as Eval.conjunct_schedule: a conjunct runs at the
     earliest position where all its variables are bound. *)
  let slot conjunct =
    List.fold_left
      (fun acc v ->
        match List.assoc_opt v positions with
        | Some p -> max acc (p + 1)
        | None -> acc)
      0
      (Ast.pred_vars conjunct)
  in
  let n = Array.length bindings in
  let schedule = Array.make (n + 1) [] in
  List.iter
    (fun conjunct ->
      let s = slot conjunct in
      schedule.(s) <- compile_pred positions conjunct :: schedule.(s))
    (Ast.conjuncts q.where);
  let schedule = Array.map List.rev schedule in
  let wants_index =
    List.exists (fun (b : Ast.binding) -> path_descends b.path) q.bindings
    || pred_descends q.where
  in
  {
    arity = q.arity;
    nvars = n;
    bindings;
    schedule;
    wants_index;
    return_ = compile_construct positions q.return_;
  }

let compile_checked q =
  let rec go = function
    | Ast.Flwr f -> Flwr (compile_flwr f)
    | Ast.Compose (head, subs) -> Compose (compile_flwr head, List.map go subs)
  in
  go q

let compile q =
  (match Ast.check q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Compile.compile: " ^ msg));
  compile_checked q

(* Compile once per service: activations of the same query hit the
   cache.  Bounded so fuzzers can't grow it without limit. *)
let memo : (Ast.t, t) Hashtbl.t = Hashtbl.create 64

let compiled q =
  match Hashtbl.find_opt memo q with
  | Some c -> c
  | None ->
      let t0 = Trace.wall_ms () in
      let c = compile q in
      if Metrics.is_on Metrics.default then
        Metrics.observe Metrics.default ~subsystem:"query" "compile_ms"
          (Trace.wall_ms () -. t0);
      if Hashtbl.length memo >= 1024 then Hashtbl.reset memo;
      Hashtbl.replace memo q c;
      c

(* --- evaluation -------------------------------------------------- *)

(* A bound value: the node, plus its index entry when the node came
   from an indexed forest — entries make descendant steps postings
   lookups; bare nodes fall back to traversal. *)
type v = { node : Tree.t; info : (Index.t * Index.entry) option }

type counters = {
  mutable hits : int;
  mutable fallbacks : int;
  mutable builds : int;
}

let test_matches test t =
  match (test, t) with
  | Ast.Any_elt, Tree.Element _ -> true
  | Ast.Name l, Tree.Element e -> Label.equal e.label l
  | _, Tree.Text _ -> false

let value_in idx tree =
  match idx with
  | None -> { node = tree; info = None }
  | Some ix -> (
      match Index.entry_of ix tree with
      | Some e -> { node = tree; info = Some (ix, e) }
      | None -> { node = tree; info = None })

(* Accumulator preorder collection — the traversal arm, used for
   unindexed nodes (and by Eval itself for the whole axis). *)
let descendants_matching_acc test t acc =
  let rec go acc t =
    let acc = if test_matches test t then t :: acc else acc in
    List.fold_left go acc (Tree.children t)
  in
  go acc t

let step_select cnt (step : Ast.step) values =
  match step.axis with
  | Ast.Child ->
      List.concat_map
        (fun v ->
          List.filter_map
            (fun c ->
              if test_matches step.test c then
                Some
                  (match v.info with
                  | Some (ix, _) -> value_in (Some ix) c
                  | None -> { node = c; info = None })
              else None)
            (Tree.children v.node))
        values
  | Ast.Descendant ->
      List.concat_map
        (fun v ->
          match v.info with
          | Some (ix, e) ->
              cnt.hits <- cnt.hits + 1;
              let label =
                match step.test with
                | Ast.Name l -> Some l
                | Ast.Any_elt -> None
              in
              List.map
                (fun en -> { node = Index.node en; info = Some (ix, en) })
                (Index.descendants ?label ix e)
          | None ->
              cnt.fallbacks <- cnt.fallbacks + 1;
              List.rev
                (List.fold_left
                   (fun acc c -> descendants_matching_acc step.test c acc)
                   [] (Tree.children v.node))
              |> List.map (fun node -> { node; info = None }))
        values

let path_select cnt path values =
  List.fold_left (fun vs s -> step_select cnt s vs) values path

let operand_value env = function
  | Const s -> Some s
  | Text_of i -> Some (Tree.text_content env.(i).node)
  | Attr_of (i, a) -> Tree.attr env.(i).node a

let rec holds cnt env = function
  | True -> true
  | Cmp (a, op, b) -> (
      match (operand_value env a, operand_value env b) with
      | Some va, Some vb -> Eval.compare_values op va vb
      | (Some _ | None), _ -> false)
  | Exists (i, path) -> path_select cnt path [ env.(i) ] <> []
  | And (a, b) -> holds cnt env a && holds cnt env b
  | Or (a, b) -> holds cnt env a || holds cnt env b
  | Not p -> not (holds cnt env p)

let rec instantiate ~gen env = function
  | Text s -> [ Tree.text s ]
  | Copy_of i -> [ Tree.copy ~gen env.(i).node ]
  | Content_of i -> [ Tree.text (Tree.text_content env.(i).node) ]
  | Attr_content (i, a) -> (
      match Tree.attr env.(i).node a with
      | None -> []
      | Some value -> [ Tree.text value ])
  | Elem { label; attrs; children } ->
      let kids = List.concat_map (instantiate ~gen env) children in
      [ Tree.element ~attrs ~gen label kids ]

let dummy = { node = Tree.text ""; info = None }

let eval_flwr ~gen cnt (f : flwr) (inputs : (Forest.t * Index.t option) array) =
  let tuples = ref 0 in
  let env = Array.make (max 1 f.nvars) dummy in
  let nb = Array.length f.bindings in
  let rec bind position =
    if position = nb then instantiate ~gen env f.return_
    else begin
      let src, path = f.bindings.(position) in
      let roots =
        match src with
        | Input i ->
            let forest, idx = inputs.(i) in
            List.map (value_in idx) forest
        | Var j -> [ env.(j) ]
      in
      let values = path_select cnt path roots in
      List.concat_map
        (fun v ->
          incr tuples;
          env.(position) <- v;
          if List.for_all (holds cnt env) f.schedule.(position + 1) then
            bind (position + 1)
          else [])
        values
    end
  in
  let out =
    if List.for_all (holds cnt env) f.schedule.(0) then bind 0 else []
  in
  (out, !tuples)

(* Index an input on the fly when the query has descendant steps and
   the forest is big enough to repay the build. *)
let provision cnt wants_index (forest, idx) =
  match idx with
  | Some ix when Index.usable ix -> (forest, Some ix)
  | Some _ ->
      cnt.fallbacks <- cnt.fallbacks + 1;
      (forest, None)
  | None ->
      if wants_index && Forest.size forest >= !threshold then begin
        let ix = Index.build_forest forest in
        cnt.builds <- cnt.builds + 1;
        if Index.usable ix then (forest, Some ix)
        else begin
          cnt.fallbacks <- cnt.fallbacks + 1;
          (forest, None)
        end
      end
      else (forest, None)

let rec eval_compiled ~gen cnt c (inputs : (Forest.t * Index.t option) list) =
  match c with
  | Flwr f ->
      eval_flwr ~gen cnt f
        (Array.of_list (List.map (provision cnt f.wants_index) inputs))
  | Compose (head, subs) ->
      let intermediates, counts =
        List.split (List.map (fun s -> eval_compiled ~gen cnt s inputs) subs)
      in
      let head_inputs =
        List.map
          (fun forest -> provision cnt head.wants_index (forest, None))
          intermediates
      in
      let out, head_count =
        eval_flwr ~gen cnt head (Array.of_list head_inputs)
      in
      (out, head_count + List.fold_left ( + ) 0 counts)

let flush cnt =
  if Metrics.is_on Metrics.default then begin
    if cnt.hits > 0 then
      Metrics.incr Metrics.default ~by:cnt.hits ~subsystem:"query" "index_hits";
    if cnt.fallbacks > 0 then
      Metrics.incr Metrics.default ~by:cnt.fallbacks ~subsystem:"query"
        "fallback";
    if cnt.builds > 0 then
      Metrics.incr Metrics.default ~by:cnt.builds ~subsystem:"query"
        "index_builds"
  end;
  (* Per-evaluation attribution for the profiler: the ambient operator
     id stamped into this instant lets {!Axml_peer.Profiler} fold
     index behaviour onto the plan operator whose query this was. *)
  if
    cnt.hits + cnt.fallbacks + cnt.builds > 0
    && Axml_obs.Trace.sampled ()
  then
    Axml_obs.Trace.instant ~cat:"query" ~peer:"query"
      ~ts:(Axml_obs.Timeseries.now Axml_obs.Timeseries.default)
      ~args:
        [
          ("hits", string_of_int cnt.hits);
          ("fallbacks", string_of_int cnt.fallbacks);
          ("builds", string_of_int cnt.builds);
        ]
      "index"

let check_arity q inputs =
  (match Ast.check q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Query.eval: " ^ msg));
  if List.length inputs <> Ast.arity q then
    invalid_arg
      (Printf.sprintf "Query.eval: arity mismatch (query %d, inputs %d)"
         (Ast.arity q) (List.length inputs))

let eval_counted ?engine:e ~gen q inputs =
  match Option.value ~default:!default_engine e with
  | Naive -> Eval.eval_counted ~gen q inputs
  | Indexed ->
      check_arity q inputs;
      let cnt = { hits = 0; fallbacks = 0; builds = 0 } in
      let out =
        eval_compiled ~gen cnt (compiled q)
          (List.map (fun f -> (f, None)) inputs)
      in
      flush cnt;
      out

let eval ?engine:e ~gen q inputs =
  match Option.value ~default:!default_engine e with
  | Naive -> Eval.eval ~gen q inputs
  | Indexed -> fst (eval_counted ?engine:e ~gen q inputs)

let eval_over ?engine:e ~gen q inputs =
  match Option.value ~default:!default_engine e with
  | Naive -> Eval.eval ~gen q (List.map fst inputs)
  | Indexed ->
      check_arity q (List.map fst inputs);
      let cnt = { hits = 0; fallbacks = 0; builds = 0 } in
      let out, _ = eval_compiled ~gen cnt (compiled q) inputs in
      flush cnt;
      out
