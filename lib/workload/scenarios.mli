(** Ready-made multi-peer scenarios.

    The paper motivates the framework with a real-life software
    distribution application (Section 1; detailed only in the
    unavailable extended report) and with continuous subscriptions.
    These builders reconstruct both as synthetic but structurally
    faithful workloads over the simulator. *)

module Peer_id = Axml_net.Peer_id

(** {1 Software distribution (the eDos-style application)}

    [n] mirror peers each host a replicated package catalog (declared
    as a generic document class), a declarative dependency-resolution
    service, and an update feed.  A client peer issues resolution
    requests. *)

type software_distribution = {
  sd_system : Axml_peer.System.t;
  sd_client : Peer_id.t;
  sd_mirrors : Peer_id.t list;
  sd_resolve : string;  (** Service name of the resolver (on every mirror). *)
  sd_catalog_class : string;  (** Generic-document class of the catalog. *)
  sd_packages : string list;  (** All package names. *)
}

val software_distribution :
  ?mirrors:int ->
  ?packages:int ->
  ?deps_per_package:int ->
  ?payload_bytes:int ->
  seed:int ->
  unit ->
  software_distribution
(** Defaults: 3 mirrors, 60 packages, ≤3 deps each, 96-byte payloads.
    The resolver service has arity 2: a request document of
    [<want name="…"/>] elements, and a catalog; it returns the wanted
    [<package>] subtrees. *)

val resolution_request :
  software_distribution -> at:Peer_id.t -> wanted:string list -> Axml_xml.Tree.t
(** Build a request tree at the given peer. *)

(** {1 Flash-crowd software distribution (web scale)}

    One publisher, [mirrors] mirror peers each exposing an extern
    package-fetch service behind a single generic service class, and
    [subscribers] client peers.  The publisher announces a release to
    every mirror at t=0; subscriber arrivals follow a flash-crowd ramp
    (quadratic, front-loaded over [arrival_window_ms]).  Each
    subscriber runs a closed loop: resolve the class through
    {!Axml_doc.Generic.pick_service}, invoke fetch on the chosen
    mirror, and after the response and a think delay issue the next
    request, [requests_per_subscriber] times.  Each request costs two
    remote messages (Invoke + Stream), so total traffic is
    ~2·[subscribers]·[requests_per_subscriber] messages — the driver
    behind bench E20 and [axmlctl scale]. *)

type flash_crowd = {
  fc_system : Axml_peer.System.t;
  fc_publisher : Peer_id.t;
  fc_mirrors : Peer_id.t list;
  fc_subscribers : Peer_id.t list;
  fc_fetch_class : string;  (** Generic service class of the fetch service. *)
  fc_requests : int;  (** Total requests the crowd will issue. *)
  fc_completed : int ref;  (** Requests whose final response arrived. *)
  fc_unserved : int ref;  (** Requests that found no available mirror. *)
}

val flash_crowd :
  ?mirrors:int ->
  ?subscribers:int ->
  ?requests_per_subscriber:int ->
  ?packages:int ->
  ?payload_bytes:int ->
  ?arrival_window_ms:float ->
  ?think_ms:float ->
  ?transport:Axml_peer.System.transport ->
  ?wire:Axml_peer.System.wire ->
  ?flush_ms:float ->
  ?ack_delay_ms:float ->
  seed:int ->
  unit ->
  flash_crowd
(** Defaults: 8 mirrors, 64 subscribers, 4 requests each, 32 packages,
    256-byte payloads, 500 ms arrival window, ≤5 ms think time, [Raw]
    transport.  Build, then {!Axml_peer.System.run} with a
    [max_events] budget of at least ~4·[fc_requests]. *)

(** {1 Hotspot placement workload}

    A skewed read load ([hot_fraction] of the documents draw
    [hot_share] of the traffic) with a writer streaming appends into
    the hot documents — the workload the adaptive placement
    controller ({!Axml_peer.Placement}) is measured on (E23).
    Document contents and appends are functions of the document index
    only, so every same-shape run reaches the same Σ {e content}
    ({!Axml_peer.System.content_fingerprint}) regardless of seed,
    wire or (healed) faults; the seed drives which documents are hot,
    reader arrival and read sampling. *)

type hotspot = {
  hs_system : Axml_peer.System.t;
  hs_writer : Peer_id.t;  (** Never crash this peer: its timers drive appends. *)
  hs_owners : Peer_id.t list;
  hs_spares : Peer_id.t list;  (** Idle peers — natural migration targets. *)
  hs_readers : Peer_id.t list;
  hs_docs : (string * Peer_id.t) list;  (** (doc/class name, owner). *)
  hs_hot : string list;
  hs_requests : int;
  hs_completed : int ref;
  hs_unserved : int ref;
  hs_latencies : float list ref;
      (** Completed-read latencies (ms), newest first. *)
}

val hotspot :
  ?owners:int ->
  ?spares:int ->
  ?readers:int ->
  ?docs:int ->
  ?hot_fraction:float ->
  ?hot_share:float ->
  ?reads_per_reader:int ->
  ?appends:int ->
  ?append_every_ms:float ->
  ?payload_bytes:int ->
  ?think_ms:float ->
  ?arrival_window_ms:float ->
  ?steered:bool ->
  ?wire:Axml_peer.System.wire ->
  ?cpu_ms_per_kb:float ->
  seed:int ->
  unit ->
  hotspot
(** Defaults: 8 owners, 4 spares, 24 readers, 50 docs, 2 % hot
    drawing 90 % of reads, 40 reads/reader, 10 appends per hot doc
    every 20 ms, 2 KB payloads, 0.4 cpu-ms/KB (serving a read is
    real work — the queueing placement relieves).  Always the
    [Reliable] transport.  [steered] selects the load-steered pick
    policy for readers (else seeded [Random]).  The caller owns
    telemetry ({!Axml_obs.Timeseries.set_window} /
    [set_enabled]) and, for the adaptive arm, attaches
    {!Axml_peer.Placement.enable} — restrict [eligible] to
    [hs_owners @ hs_spares] or readers will attract replicas. *)

(** {1 Overlapping continuous queries (the semantic-cache workload)}

    [subscribers] peers repeatedly query the catalogs of [sources]
    peers: each subscriber owns a fixed slate of
    [queries_per_subscriber] expressions — a seed-chosen mix of pool
    queries shared across subscribers ([overlap_pct] of the draws)
    and queries unique to it — and re-issues the slate every round,
    [rounds] times.  Between rounds a rotating [mutate_fraction]
    slice of the catalogs gains an item.  Round repetition exercises
    subscriber-side caching, the shared pool exercises cross-plan
    sharing at the sources, and the mutations exercise invalidation
    — the driver behind bench E24 and [axmlctl cache].

    Rounds are barrier-synchronized with the appends applied
    synchronously at the barrier, so the catalog state a round
    observes is a pure function of the round index: the per-request
    result digests ([ov_digests], one ["k/j/r:<md5>"] entry per
    completed query) are byte-identical between cache-on and
    cache-off runs of the same shape and seed — the correctness gate.
    [cache] toggles {!Axml_peer.System.enable_qcache} (default on). *)

type overlap = {
  ov_system : Axml_peer.System.t;
  ov_sources : Peer_id.t list;
  ov_subscribers : Peer_id.t list;
  ov_requests : int;  (** subscribers × queries_per_subscriber × rounds. *)
  ov_completed : int ref;
  ov_digests : string list ref;
      (** Per-request result digests, unordered; compare as sorted
          lists across arms. *)
  ov_latencies : float list ref;  (** Per-request completion times (ms). *)
}

val overlap :
  ?sources:int ->
  ?subscribers:int ->
  ?queries_per_subscriber:int ->
  ?rounds:int ->
  ?overlap_pct:float ->
  ?categories:int ->
  ?items:int ->
  ?payload_bytes:int ->
  ?mutate_fraction:float ->
  ?think_ms:float ->
  ?arrival_window_ms:float ->
  ?cache:bool ->
  ?cpu_ms_per_kb:float ->
  seed:int ->
  unit ->
  overlap
(** Defaults: 4 sources, 16 subscribers, 4 queries each, 3 rounds,
    0.5 overlap, 4 categories, 24 items of 256 bytes per catalog,
    0.25 mutate fraction.  Runs over Reliable transport. *)

(** {1 News subscription}

    [sources] peers each expose a continuous feed over their local
    news document; an aggregator document holds one call per feed with
    a forward list pointing into itself — the classic AXML
    subscription pattern. *)

type subscription = {
  sub_system : Axml_peer.System.t;
  sub_aggregator : Peer_id.t;
  sub_sources : Peer_id.t list;
  sub_digest_doc : string;  (** Aggregator document collecting items. *)
  sub_feed_service : string;
  sub_news_doc : string;  (** Source-local document each feed watches. *)
}

val subscription : ?sources:int -> seed:int -> unit -> subscription
(** Builds the system and activates the calls; run the system, then
    publish with {!publish} and run again to see propagation. *)

val publish :
  subscription -> source:Peer_id.t -> headline:string -> unit
(** Insert a news item at a source (triggering its feed). *)
