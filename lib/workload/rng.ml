include Axml_net.Rng
