module Peer_id = Axml_net.Peer_id
module Tree = Axml_xml.Tree
module Label = Axml_xml.Label
module Names = Axml_doc.Names
module System = Axml_peer.System

type software_distribution = {
  sd_system : System.t;
  sd_client : Peer_id.t;
  sd_mirrors : Peer_id.t list;
  sd_resolve : string;
  sd_catalog_class : string;
  sd_packages : string list;
}

let l = Label.of_string

let package_tree ~gen ~rng ~name ~payload_bytes ~candidates ~deps_per_package =
  let deps =
    List.init (Rng.int rng (deps_per_package + 1)) (fun _ ->
        Rng.pick rng candidates)
  in
  let deps = List.sort_uniq String.compare deps in
  Tree.element ~gen (l "package")
    ~attrs:
      [
        ("name", name);
        ("version", Printf.sprintf "%d.%d" (1 + Rng.int rng 3) (Rng.int rng 10));
      ]
    (List.map
       (fun d -> Tree.element ~gen (l "dep") ~attrs:[ ("name", d) ] [])
       deps
    @ [
        Tree.element ~gen (l "blob")
          [ Tree.text (String.init payload_bytes (fun _ -> 'x')) ];
      ])

let resolver_query =
  (* Arity 2: $0 = request (want elements), $1 = catalog.  Join on the
     package name. *)
  Axml_query.Parser.parse_exn
    "query(2) for $w in $0//want, $p in $1//package where attr($w, \"name\") \
     = attr($p, \"name\") return <resolved>{$p}</resolved>"

let software_distribution ?(mirrors = 3) ?(packages = 60)
    ?(deps_per_package = 3) ?(payload_bytes = 96) ~seed () =
  let mirror_ids =
    List.init mirrors (fun i -> Peer_id.of_string (Printf.sprintf "mirror%d" i))
  in
  let client = Peer_id.of_string "client" in
  let topology =
    Axml_net.Topology.full_mesh
      ~link:(Axml_net.Link.make ~latency_ms:10.0 ~bandwidth_bytes_per_ms:100.0)
      (client :: mirror_ids)
  in
  let sys = System.create topology in
  let package_names =
    List.init packages (fun i -> Printf.sprintf "pkg%03d" i)
  in
  let catalog_class = "catalog" in
  List.iter
    (fun m ->
      let gen = System.gen_of sys m in
      let mirror_rng = Rng.create ~seed:(seed + Hashtbl.hash (Peer_id.to_string m)) in
      let pkgs =
        List.map
          (fun name ->
            package_tree ~gen ~rng:mirror_rng ~name ~payload_bytes
              ~candidates:package_names ~deps_per_package)
          package_names
      in
      System.add_document sys m ~name:"packages"
        (Tree.element ~gen (l "packages") pkgs);
      System.add_service sys m
        (Axml_doc.Service.declarative ~name:"resolve" resolver_query);
      (* Update feed: a continuous service over the local updates
         document. *)
      System.add_document sys m ~name:"updates"
        (Tree.element ~gen (l "updates") []);
      System.add_service sys m
        (Axml_doc.Service.doc_feed ~name:"update_feed" ~doc:"updates");
      System.register_doc_class sys ~class_name:catalog_class
        (Names.Doc_ref.make
           (Names.Doc_name.of_string "packages")
           (Names.At m));
      System.register_service_class sys ~class_name:"resolve_any"
        (Names.Service_ref.make
           (Names.Service_name.of_string "resolve")
           (Names.At m)))
    mirror_ids;
  {
    sd_system = sys;
    sd_client = client;
    sd_mirrors = mirror_ids;
    sd_resolve = "resolve";
    sd_catalog_class = catalog_class;
    sd_packages = package_names;
  }

let resolution_request sd ~at ~wanted =
  let gen = System.gen_of sd.sd_system at in
  Tree.element ~gen (l "request")
    (List.map
       (fun name -> Tree.element ~gen (l "want") ~attrs:[ ("name", name) ] [])
       wanted)

type flash_crowd = {
  fc_system : System.t;
  fc_publisher : Peer_id.t;
  fc_mirrors : Peer_id.t list;
  fc_subscribers : Peer_id.t list;
  fc_fetch_class : string;
  fc_requests : int;
  fc_completed : int ref;
  fc_unserved : int ref;
}

let flash_crowd ?(mirrors = 8) ?(subscribers = 64) ?(requests_per_subscriber = 4)
    ?(packages = 32) ?(payload_bytes = 256) ?(arrival_window_ms = 500.0)
    ?(think_ms = 5.0) ?transport ?wire ?flush_ms ?ack_delay_ms ~seed () =
  if mirrors < 1 then invalid_arg "Scenarios.flash_crowd: mirrors < 1";
  if subscribers < 0 then invalid_arg "Scenarios.flash_crowd: subscribers < 0";
  let publisher = Peer_id.of_string "origin" in
  let mirror_ids =
    List.init mirrors (fun i -> Peer_id.of_string (Printf.sprintf "mirror%03d" i))
  in
  let sub_ids =
    List.init subscribers (fun i -> Peer_id.of_string (Printf.sprintf "sub%05d" i))
  in
  let topology =
    Axml_net.Topology.clustered
      ~intra:(Axml_net.Link.make ~latency_ms:2.0 ~bandwidth_bytes_per_ms:1000.0)
      ~inter:(Axml_net.Link.make ~latency_ms:20.0 ~bandwidth_bytes_per_ms:200.0)
      [ publisher :: mirror_ids; sub_ids ]
  in
  let sys = System.create ?transport ?wire ?flush_ms ?ack_delay_ms topology in
  let sim = System.sim sys in
  let fetch_class = "fetch_any" in
  (* Mirrors: an extern package-fetch service over a pre-built package
     array, registered as one generic service class. *)
  List.iter
    (fun m ->
      let gen = System.gen_of sys m in
      let pkg_forests =
        Array.init packages (fun i ->
            [
              Tree.element ~gen (l "package")
                ~attrs:
                  [ ("name", Printf.sprintf "pkg%03d" i); ("version", "2.0") ]
                [
                  Tree.element ~gen (l "blob")
                    [ Tree.text (String.make payload_bytes 'x') ];
                ];
            ])
      in
      let fetch params =
        match params with
        | [ (req :: _) ] -> (
            match Tree.attr req "pkg" with
            | Some s ->
                let i = int_of_string s in
                if i >= 0 && i < packages then pkg_forests.(i) else []
            | None -> [])
        | _ -> []
      in
      System.add_service sys m
        (Axml_doc.Service.extern ~name:"fetch"
           ~signature:(Axml_schema.Signature.untyped ~arity:1)
           fetch);
      System.register_service_class sys ~class_name:fetch_class
        (Names.Service_ref.make (Names.Service_name.of_string "fetch") (Names.At m)))
    mirror_ids;
  (* The publisher announces the release to every mirror (the event
     that triggers the crowd). *)
  let pgen = System.gen_of sys publisher in
  List.iter
    (fun m ->
      System.send sys ~src:publisher ~dst:m
        (Axml_peer.Message.Install_doc
           {
             name = "release";
             forest =
               Axml_peer.Message.now
                 [
                   Tree.element ~gen:pgen (l "release")
                     ~attrs:
                       [
                         ("version", "2.0"); ("packages", string_of_int packages);
                       ]
                     [];
                 ];
             notify = None;
           }))
    mirror_ids;
  let completed = ref 0 and unserved = ref 0 in
  (* One request tree per package, shared by every subscriber: the
     fetch service only reads the [pkg] attribute and nothing installs
     these trees, so sharing is safe — and it keeps half a million
     requests from allocating half a million identical elements. *)
  let req_trees =
    let rgen = Axml_xml.Node_id.Gen.create ~namespace:"flash-crowd-req" in
    Array.init packages (fun i ->
        Tree.element ~gen:rgen (l "get") ~attrs:[ ("pkg", string_of_int i) ] [])
  in
  (* Each subscriber runs a closed loop: pick a mirror through the
     generic class, invoke fetch, and on the final response batch
     schedule the next request after a think delay.  The availability
     oracle and catalog are per-subscriber invariants, hoisted out of
     the per-request path. *)
  (* Each request is one cross-peer computation: mint it a fresh
     correlation id so head sampling (see {!Axml_obs.Trace}) keeps or
     drops the whole request — invoke, mirror work, response stream —
     atomically.  Timer callbacks run under the null id, so the guard
     fires exactly once per request; with tracing off the path is
     untouched. *)
  let rec request sub avail catalog sub_rng pick_seed remaining =
    if Axml_obs.Trace.enabled () && Axml_obs.Trace.current_corr () = 0 then
      Axml_obs.Trace.with_corr
        (Axml_obs.Trace.fresh_corr ())
        (fun () -> request sub avail catalog sub_rng pick_seed remaining)
    else
    match
      Axml_doc.Generic.pick_service ~available:avail catalog
        ~policy:(Axml_doc.Generic.Random pick_seed)
        ~class_name:fetch_class
    with
    | None | Some { Names.Service_ref.at = Names.Any; _ } ->
        incr unserved;
        (* SLO breach: no reachable mirror — the request dies here. *)
        if Axml_obs.Trace.sampled () then
          Axml_obs.Trace.instant ~cat:"slo"
            ~peer:(Peer_id.to_string sub)
            ~ts:(Axml_net.Sim.now sim)
            ~args:[ ("class", fetch_class) ]
            "unserved"
    | Some { Names.Service_ref.name = service; at = Names.At provider } ->
        let key = System.fresh_key sys in
        System.set_cont sys key (fun _forest ~final ->
            if final then begin
              incr completed;
              if remaining > 1 then
                Axml_net.Sim.after sim ~peer:sub
                  ~delay_ms:(Rng.float sub_rng think_ms)
                  (fun () ->
                    request sub avail catalog sub_rng pick_seed (remaining - 1))
            end);
        let req = req_trees.(Rng.int sub_rng packages) in
        System.send sys ~src:sub ~dst:provider
          (Axml_peer.Message.Invoke
             {
               service;
               params = [ Axml_peer.Message.now [ req ] ];
               replies = [ Axml_peer.Message.Cont { peer = sub; key } ];
             })
  in
  (* Flash-crowd arrival curve: quadratic ramp concentrating arrivals
     near the release announcement, with a long tail. *)
  let arrival_rng = Rng.create ~seed in
  List.iteri
    (fun k sub ->
      let u = Rng.float arrival_rng 1.0 in
      let at = arrival_window_ms *. u *. u in
      let sub_rng = Rng.create ~seed:((seed * 1_000_003) + k) in
      let pick_seed = seed + k in
      if requests_per_subscriber > 0 then
        Axml_net.Sim.after sim ~peer:sub ~delay_ms:at (fun () ->
            let avail = System.availability sys ~from:sub in
            let catalog = (System.peer sys sub).Axml_peer.Peer.catalog in
            request sub avail catalog sub_rng pick_seed
              requests_per_subscriber))
    sub_ids;
  {
    fc_system = sys;
    fc_publisher = publisher;
    fc_mirrors = mirror_ids;
    fc_subscribers = sub_ids;
    fc_fetch_class = fetch_class;
    fc_requests = subscribers * requests_per_subscriber;
    fc_completed = completed;
    fc_unserved = unserved;
  }

type hotspot = {
  hs_system : System.t;
  hs_writer : Peer_id.t;
  hs_owners : Peer_id.t list;
  hs_spares : Peer_id.t list;
  hs_readers : Peer_id.t list;
  hs_docs : (string * Peer_id.t) list;
  hs_hot : string list;
  hs_requests : int;
  hs_completed : int ref;
  hs_unserved : int ref;
  hs_latencies : float list ref;
}

(* The placement workload (ROADMAP item 3): a skewed read load where a
   [hot_fraction] of the documents draws a [hot_share] of the
   traffic, plus a writer streaming appends into the hot documents —
   the worst case for static placement and the input the adaptive
   controller is built for.

   Determinism contract: document contents and append forests are
   functions of the document {e index}, not of [seed] — so every run
   of the same shape reaches the same Σ content regardless of seed,
   wire or faults (the chaos suite's reference).  The seed drives
   only {e behaviour}: which documents are hot, when readers arrive,
   what they read — exactly the inputs that must make same-seed runs
   replay and cross-seed runs diverge. *)
let hotspot ?(owners = 8) ?(spares = 4) ?(readers = 24) ?(docs = 50)
    ?(hot_fraction = 0.02) ?(hot_share = 0.9) ?(reads_per_reader = 40)
    ?(appends = 10) ?(append_every_ms = 20.0) ?(payload_bytes = 2048)
    ?(think_ms = 2.0) ?(arrival_window_ms = 100.0) ?(steered = false)
    ?wire ?(cpu_ms_per_kb = 0.4) ~seed () =
  if owners < 1 then invalid_arg "Scenarios.hotspot: owners < 1";
  if docs < 1 then invalid_arg "Scenarios.hotspot: docs < 1";
  let writer = Peer_id.of_string "writer0" in
  let owner_ids =
    List.init owners (fun i -> Peer_id.of_string (Printf.sprintf "owner%02d" i))
  in
  let spare_ids =
    List.init spares (fun i -> Peer_id.of_string (Printf.sprintf "spare%02d" i))
  in
  let reader_ids =
    List.init readers (fun i ->
        Peer_id.of_string (Printf.sprintf "reader%03d" i))
  in
  let topology =
    Axml_net.Topology.clustered
      ~intra:(Axml_net.Link.make ~latency_ms:2.0 ~bandwidth_bytes_per_ms:1000.0)
      ~inter:(Axml_net.Link.make ~latency_ms:20.0 ~bandwidth_bytes_per_ms:200.0)
      [ (writer :: owner_ids) @ spare_ids; reader_ids ]
  in
  (* Placement handoffs require Reliable; the static arm runs the
     same transport so the comparison isolates placement itself. *)
  let sys =
    System.create ~transport:System.Reliable ?wire ~cpu_ms_per_kb topology
  in
  let sim = System.sim sys in
  let doc_names = List.init docs (fun i -> Printf.sprintf "doc%03d" i) in
  let owner_of = Array.of_list owner_ids in
  (* Σ population: document [i] lives at owner [i mod owners], with
     index-deterministic content, and is registered as the sole member
     of a same-named generic class in every catalog. *)
  let root_ids = Hashtbl.create docs in
  let docs_with_owners =
    List.mapi
      (fun i name ->
        let owner = owner_of.(i mod owners) in
        let gen = System.gen_of sys owner in
        let body =
          List.init 4 (fun j ->
              Tree.element ~gen (l "item")
                ~attrs:[ ("n", string_of_int j) ]
                [ Tree.text (String.make (payload_bytes / 4) 'x') ])
        in
        let root =
          Tree.element ~gen (l "doc") ~attrs:[ ("name", name) ] body
        in
        Hashtbl.replace root_ids name (Option.get (Tree.id root));
        System.add_document sys owner ~name root;
        System.register_doc_class sys ~class_name:name
          (Names.Doc_ref.make (Names.Doc_name.of_string name) (Names.At owner));
        (name, owner))
      doc_names
  in
  (* The hot set: seed-chosen indices, so different seeds heat
     different documents (and migrate different ones) while the
     universe of contents stays seed-independent. *)
  let hot_count =
    max 1 (int_of_float (Float.round (float_of_int docs *. hot_fraction)))
  in
  let hot_rng = Rng.create ~seed:(seed + 7) in
  let hot_names =
    Rng.shuffle hot_rng doc_names |> fun shuffled ->
    List.filteri (fun i _ -> i < hot_count) shuffled
    |> List.sort String.compare
  in
  (* Streaming appends: the writer fires [appends] rounds into every
     hot document over the run — the traffic a live handoff must
     forward without loss or duplication.  Forests are prebuilt with
     index-deterministic ids and content. *)
  let wgen = System.gen_of sys writer in
  List.iter
    (fun name ->
      let owner = List.assoc name docs_with_owners in
      let node = Hashtbl.find root_ids name in
      for j = 0 to appends - 1 do
        let forest =
          [
            Tree.element ~gen:wgen (l "append")
              ~attrs:[ ("doc", name); ("seq", string_of_int j) ]
              [ Tree.text (Printf.sprintf "update-%s-%d" name j) ];
          ]
        in
        Axml_net.Sim.after sim ~peer:writer
          ~delay_ms:(append_every_ms *. float_of_int (j + 1))
          (fun () ->
            System.send sys ~src:writer ~dst:owner
              (Axml_peer.Message.Insert
                 { node; forest = Axml_peer.Message.now forest; notify = None }))
      done)
    hot_names;
  (* Readers: a closed loop of generic reads, [hot_share] of them
     aimed at the hot set, resolved through the reader's own pick
     policy — [Random] (static spreading) or the load-steered policy
     fed by the controller's signals. *)
  let hot_arr = Array.of_list hot_names in
  let cold_arr =
    Array.of_list
      (List.filter (fun n -> not (List.mem n hot_names)) doc_names)
  in
  let completed = ref 0 and unserved = ref 0 in
  let latencies = ref [] in
  let rec read reader sub_rng remaining =
    if Axml_obs.Trace.enabled () && Axml_obs.Trace.current_corr () = 0 then
      Axml_obs.Trace.with_corr
        (Axml_obs.Trace.fresh_corr ())
        (fun () -> read reader sub_rng remaining)
    else begin
      let name =
        if Array.length cold_arr = 0 || Rng.float sub_rng 1.0 < hot_share then
          hot_arr.(Rng.int sub_rng (Array.length hot_arr))
        else cold_arr.(Rng.int sub_rng (Array.length cold_arr))
      in
      let t0 = Axml_net.Sim.now sim in
      let key = System.fresh_key sys in
      System.set_cont sys key (fun forest ~final ->
          if final then begin
            if forest = [] then incr unserved
            else begin
              incr completed;
              latencies := (Axml_net.Sim.now sim -. t0) :: !latencies
            end;
            if remaining > 1 then
              Axml_net.Sim.after sim ~peer:reader
                ~delay_ms:(Rng.float sub_rng think_ms)
                (fun () -> read reader sub_rng (remaining - 1))
          end);
      (* Loopback: evaluation starts at the reader, so generic
         resolution uses the reader's catalog and policy. *)
      System.send sys ~src:reader ~dst:reader
        (Axml_peer.Message.Eval_request
           {
             expr = Axml_algebra.Expr.doc_any name;
             replies = [ Axml_peer.Message.Cont { peer = reader; key } ];
             ack = None;
           })
    end
  in
  let arrival_rng = Rng.create ~seed in
  List.iteri
    (fun k reader ->
      (if steered then
         let policy =
           Axml_peer.Placement.steered_policy ~seed:(seed + k) sys
         in
         (System.peer sys reader).Axml_peer.Peer.policy <- policy
       else
         (System.peer sys reader).Axml_peer.Peer.policy
         <- Axml_doc.Generic.Random (seed + k));
      let sub_rng = Rng.create ~seed:((seed * 1_000_003) + k) in
      if reads_per_reader > 0 then
        Axml_net.Sim.after sim ~peer:reader
          ~delay_ms:(arrival_window_ms *. Rng.float arrival_rng 1.0)
          (fun () -> read reader sub_rng reads_per_reader))
    reader_ids;
  {
    hs_system = sys;
    hs_writer = writer;
    hs_owners = owner_ids;
    hs_spares = spare_ids;
    hs_readers = reader_ids;
    hs_docs = docs_with_owners;
    hs_hot = hot_names;
    hs_requests = readers * reads_per_reader;
    hs_completed = completed;
    hs_unserved = unserved;
    hs_latencies = latencies;
  }

type overlap = {
  ov_system : System.t;
  ov_sources : Peer_id.t list;
  ov_subscribers : Peer_id.t list;
  ov_requests : int;
  ov_completed : int ref;
  ov_digests : string list ref;
  ov_latencies : float list ref;
}

(* The semantic-cache workload (ROADMAP item 5): many subscribers
   issuing overlapping continuous queries against shared sources.
   Each subscriber owns a fixed slate of queries — a seed-chosen mix
   of pool queries shared across subscribers and queries unique to it
   — and re-issues the slate every round, with source catalogs
   mutating between rounds.  Repetition across rounds exercises
   subscriber-side caching, the shared pool exercises cross-plan
   sharing at the sources, and the mutations exercise invalidation.

   Determinism contract: rounds are barrier-synchronized, and the
   between-round catalog appends are applied synchronously at the
   barrier (directly in the owning store, not via messages) — so the
   document state each round's queries observe is a pure function of
   the round index.  Per-request results are therefore identical
   whether or not caching is on, whatever the hit/miss interleaving:
   the [ov_digests] multiset is the cache-off/cache-on correctness
   gate. *)
let overlap ?(sources = 4) ?(subscribers = 16) ?(queries_per_subscriber = 4)
    ?(rounds = 3) ?(overlap_pct = 0.5) ?(categories = 4) ?(items = 24)
    ?(payload_bytes = 256) ?(mutate_fraction = 0.25) ?(think_ms = 2.0)
    ?(arrival_window_ms = 20.0) ?(cache = true) ?(cpu_ms_per_kb = 0.2) ~seed ()
    =
  if sources < 1 then invalid_arg "Scenarios.overlap: sources < 1";
  if categories < 1 then invalid_arg "Scenarios.overlap: categories < 1";
  if rounds < 1 then invalid_arg "Scenarios.overlap: rounds < 1";
  let source_ids =
    List.init sources (fun i -> Peer_id.of_string (Printf.sprintf "src%02d" i))
  in
  let sub_ids =
    List.init subscribers (fun i ->
        Peer_id.of_string (Printf.sprintf "sub%03d" i))
  in
  let topology =
    Axml_net.Topology.clustered
      ~intra:(Axml_net.Link.make ~latency_ms:2.0 ~bandwidth_bytes_per_ms:1000.0)
      ~inter:(Axml_net.Link.make ~latency_ms:20.0 ~bandwidth_bytes_per_ms:200.0)
      [ source_ids; sub_ids ]
  in
  let sys =
    System.create ~transport:System.Reliable ~cpu_ms_per_kb topology
  in
  if cache then System.enable_qcache sys;
  let sim = System.sim sys in
  (* Source catalogs: index-deterministic content (the determinism
     contract above), items spread over the categories. *)
  let src_arr = Array.of_list source_ids in
  let root_ids =
    Array.map
      (fun src ->
        let gen = System.gen_of sys src in
        let body =
          List.init items (fun j ->
              Tree.element ~gen (l "item")
                ~attrs:
                  [
                    ("cat", Printf.sprintf "c%d" (j mod categories));
                    ("n", string_of_int j);
                  ]
                [ Tree.text (String.make payload_bytes 'x') ])
        in
        let root = Tree.element ~gen (l "catalog") body in
        System.add_document sys src ~name:"catalog" root;
        Option.get (Tree.id root))
      src_arr
  in
  (* One expression per (source, category, label) triple; ASTs and
     expression nodes are built once and reused across rounds so
     fingerprints and structural equality line up. *)
  let mk_expr ~src_ix ~cat ~label =
    let src = src_arr.(src_ix) in
    let q =
      Axml_query.Parser.parse_exn
        (Printf.sprintf
           "query(1) for $i in $0//item where attr($i, \"cat\") = \"c%d\" \
            return <%s>{$i}</%s>"
           cat label label)
    in
    Axml_algebra.Expr.eval_at src
      (Axml_algebra.Expr.query_at q ~at:src
         ~args:[ Axml_algebra.Expr.doc "catalog" ~at:(Peer_id.to_string src) ])
  in
  (* The shared pool: up to 16 (source, category) selections any
     subscriber may draw; uniques are labeled per (subscriber, slot)
     so they never alias the pool or each other. *)
  let pool_size = min 16 (sources * categories) in
  let pool =
    Array.init pool_size (fun s ->
        mk_expr ~src_ix:(s mod sources) ~cat:(s mod categories)
          ~label:(Printf.sprintf "s%d" s))
  in
  let assign_rng = Rng.create ~seed:(seed + 13) in
  let slates =
    Array.init subscribers (fun k ->
        Array.init queries_per_subscriber (fun j ->
            if Rng.float assign_rng 1.0 < overlap_pct then
              pool.(Rng.int assign_rng pool_size)
            else
              mk_expr
                ~src_ix:((k + j) mod sources)
                ~cat:(j mod categories)
                ~label:(Printf.sprintf "u%dx%d" k j)))
  in
  (* Between-round catalog appends: a rotating [mutate_fraction] slice
     of the sources gains one item per boundary — content a pure
     function of (source, round). *)
  let mutated_count =
    max 0
      (min sources
         (int_of_float (Float.round (mutate_fraction *. float_of_int sources))))
  in
  let mutate_round r =
    for i = 0 to sources - 1 do
      if (i + r) mod sources < mutated_count then begin
        let src = src_arr.(i) in
        let gen = System.gen_of sys src in
        let store = (System.peer sys src).Axml_peer.Peer.store in
        ignore
          (Axml_doc.Store.insert_under store
             (Names.Doc_name.of_string "catalog")
             ~node:root_ids.(i)
             [
               Tree.element ~gen (l "item")
                 ~attrs:
                   [
                     ("cat", Printf.sprintf "c%d" (r mod categories));
                     ("n", Printf.sprintf "r%d" r);
                   ]
                 [ Tree.text (Printf.sprintf "round-%d-src-%d" r i) ];
             ])
      end
    done
  in
  let completed = ref 0 in
  let digests = ref [] in
  let latencies = ref [] in
  let total = subscribers * queries_per_subscriber * rounds in
  (* Closed loop per subscriber within a round; a barrier between
     rounds (mutations apply only once every subscriber finished the
     round, so no query races a catalog change). *)
  let rec run_round r =
    let open_subs = ref subscribers in
    let sub_done () =
      decr open_subs;
      if !open_subs = 0 && r + 1 < rounds then begin
        mutate_round r;
        run_round (r + 1)
      end
    in
    let arrival_rng = Rng.create ~seed:(seed + (r * 7919)) in
    List.iteri
      (fun k sub ->
        let sub_rng = Rng.create ~seed:((seed * 1_000_003) + (r * 8191) + k) in
        let rec issue j =
          if j >= queries_per_subscriber then sub_done ()
          else begin
            let t0 = Axml_net.Sim.now sim in
            let acc = ref [] in
            let key = System.fresh_key sys in
            System.set_cont sys key (fun forest ~final ->
                acc := !acc @ forest;
                if final then begin
                  incr completed;
                  latencies := (Axml_net.Sim.now sim -. t0) :: !latencies;
                  let payload =
                    String.concat "\x00"
                      (List.map Axml_xml.Serializer.to_string !acc)
                  in
                  digests :=
                    Printf.sprintf "%d/%d/%d:%s" k j r
                      (Digest.to_hex (Digest.string payload))
                    :: !digests;
                  Axml_net.Sim.after sim ~peer:sub
                    ~delay_ms:(Rng.float sub_rng think_ms)
                    (fun () -> issue (j + 1))
                end);
            System.send sys ~src:sub ~dst:sub
              (Axml_peer.Message.Eval_request
                 {
                   expr = slates.(k).(j);
                   replies = [ Axml_peer.Message.Cont { peer = sub; key } ];
                   ack = None;
                 })
          end
        in
        if queries_per_subscriber = 0 then sub_done ()
        else
          Axml_net.Sim.after sim ~peer:sub
            ~delay_ms:(Rng.float arrival_rng arrival_window_ms)
            (fun () -> issue 0))
      sub_ids
  in
  run_round 0;
  {
    ov_system = sys;
    ov_sources = source_ids;
    ov_subscribers = sub_ids;
    ov_requests = total;
    ov_completed = completed;
    ov_digests = digests;
    ov_latencies = latencies;
  }

type subscription = {
  sub_system : System.t;
  sub_aggregator : Peer_id.t;
  sub_sources : Peer_id.t list;
  sub_digest_doc : string;
  sub_feed_service : string;
  sub_news_doc : string;
}

let subscription ?(sources = 3) ~seed () =
  let source_ids =
    List.init sources (fun i -> Peer_id.of_string (Printf.sprintf "source%d" i))
  in
  let aggregator = Peer_id.of_string "aggregator" in
  let topology =
    Axml_net.Topology.star ~hub:aggregator
      ~spoke_link:(Axml_net.Link.make ~latency_ms:5.0 ~bandwidth_bytes_per_ms:200.0)
      (aggregator :: source_ids)
  in
  let sys = System.create topology in
  let rng = Rng.create ~seed in
  (* Sources: a news document and a continuous feed over it. *)
  List.iter
    (fun s ->
      let gen = System.gen_of sys s in
      let initial =
        List.init (1 + Rng.int rng 2) (fun i ->
            Tree.element ~gen (l "news")
              ~attrs:[ ("source", Peer_id.to_string s) ]
              [ Tree.text (Printf.sprintf "initial-%s-%d" (Peer_id.to_string s) i) ])
      in
      System.add_document sys s ~name:"news"
        (Tree.element ~gen (l "newsfeed") initial);
      System.add_service sys s
        (Axml_doc.Service.doc_feed ~name:"feed" ~doc:"news"))
    source_ids;
  (* Aggregator: a digest document with one call per source, each
     forwarding into the digest's items node. *)
  let gen = System.gen_of sys aggregator in
  let items = Tree.element ~gen (l "items") [] in
  let items_id = Option.get (Tree.id items) in
  let calls =
    List.map
      (fun s ->
        Axml_doc.Sc.to_tree ~gen
          (Axml_doc.Sc.make
             ~forward:[ Names.Node_ref.make ~node:items_id ~peer:aggregator ]
             ~provider:(Names.At s) ~service:"feed" []))
      source_ids
  in
  System.add_document sys aggregator ~name:"digest"
    (Tree.element ~gen (l "digest") (items :: calls));
  ignore (System.activate_all sys ~peer:aggregator ());
  {
    sub_system = sys;
    sub_aggregator = aggregator;
    sub_sources = source_ids;
    sub_digest_doc = "digest";
    sub_feed_service = "feed";
    sub_news_doc = "news";
  }

let publish sub ~source ~headline =
  let sys = sub.sub_system in
  let peer = System.peer sys source in
  match Axml_doc.Store.find_by_string peer.Axml_peer.Peer.store sub.sub_news_doc with
  | None -> invalid_arg "Scenarios.publish: unknown source document"
  | Some doc -> (
      let gen = System.gen_of sys source in
      let item =
        Tree.element ~gen (l "news")
          ~attrs:[ ("source", Peer_id.to_string source) ]
          [ Tree.text headline ]
      in
      let root = Axml_doc.Document.root doc in
      match Tree.id root with
      | None -> ()
      | Some node ->
          (* Route through the system's own Insert handling so the
             feed's watchers fire. *)
          System.send sys ~src:source ~dst:source
            (Axml_peer.Message.Insert
               { node; forest = Axml_peer.Message.now [ item ]; notify = None }))
