module Peer_id = Axml_net.Peer_id
module Tree = Axml_xml.Tree
module Label = Axml_xml.Label
module Names = Axml_doc.Names
module System = Axml_peer.System

type software_distribution = {
  sd_system : System.t;
  sd_client : Peer_id.t;
  sd_mirrors : Peer_id.t list;
  sd_resolve : string;
  sd_catalog_class : string;
  sd_packages : string list;
}

let l = Label.of_string

let package_tree ~gen ~rng ~name ~payload_bytes ~candidates ~deps_per_package =
  let deps =
    List.init (Rng.int rng (deps_per_package + 1)) (fun _ ->
        Rng.pick rng candidates)
  in
  let deps = List.sort_uniq String.compare deps in
  Tree.element ~gen (l "package")
    ~attrs:
      [
        ("name", name);
        ("version", Printf.sprintf "%d.%d" (1 + Rng.int rng 3) (Rng.int rng 10));
      ]
    (List.map
       (fun d -> Tree.element ~gen (l "dep") ~attrs:[ ("name", d) ] [])
       deps
    @ [
        Tree.element ~gen (l "blob")
          [ Tree.text (String.init payload_bytes (fun _ -> 'x')) ];
      ])

let resolver_query =
  (* Arity 2: $0 = request (want elements), $1 = catalog.  Join on the
     package name. *)
  Axml_query.Parser.parse_exn
    "query(2) for $w in $0//want, $p in $1//package where attr($w, \"name\") \
     = attr($p, \"name\") return <resolved>{$p}</resolved>"

let software_distribution ?(mirrors = 3) ?(packages = 60)
    ?(deps_per_package = 3) ?(payload_bytes = 96) ~seed () =
  let mirror_ids =
    List.init mirrors (fun i -> Peer_id.of_string (Printf.sprintf "mirror%d" i))
  in
  let client = Peer_id.of_string "client" in
  let topology =
    Axml_net.Topology.full_mesh
      ~link:(Axml_net.Link.make ~latency_ms:10.0 ~bandwidth_bytes_per_ms:100.0)
      (client :: mirror_ids)
  in
  let sys = System.create topology in
  let package_names =
    List.init packages (fun i -> Printf.sprintf "pkg%03d" i)
  in
  let catalog_class = "catalog" in
  List.iter
    (fun m ->
      let gen = System.gen_of sys m in
      let mirror_rng = Rng.create ~seed:(seed + Hashtbl.hash (Peer_id.to_string m)) in
      let pkgs =
        List.map
          (fun name ->
            package_tree ~gen ~rng:mirror_rng ~name ~payload_bytes
              ~candidates:package_names ~deps_per_package)
          package_names
      in
      System.add_document sys m ~name:"packages"
        (Tree.element ~gen (l "packages") pkgs);
      System.add_service sys m
        (Axml_doc.Service.declarative ~name:"resolve" resolver_query);
      (* Update feed: a continuous service over the local updates
         document. *)
      System.add_document sys m ~name:"updates"
        (Tree.element ~gen (l "updates") []);
      System.add_service sys m
        (Axml_doc.Service.doc_feed ~name:"update_feed" ~doc:"updates");
      System.register_doc_class sys ~class_name:catalog_class
        (Names.Doc_ref.make
           (Names.Doc_name.of_string "packages")
           (Names.At m));
      System.register_service_class sys ~class_name:"resolve_any"
        (Names.Service_ref.make
           (Names.Service_name.of_string "resolve")
           (Names.At m)))
    mirror_ids;
  {
    sd_system = sys;
    sd_client = client;
    sd_mirrors = mirror_ids;
    sd_resolve = "resolve";
    sd_catalog_class = catalog_class;
    sd_packages = package_names;
  }

let resolution_request sd ~at ~wanted =
  let gen = System.gen_of sd.sd_system at in
  Tree.element ~gen (l "request")
    (List.map
       (fun name -> Tree.element ~gen (l "want") ~attrs:[ ("name", name) ] [])
       wanted)

type flash_crowd = {
  fc_system : System.t;
  fc_publisher : Peer_id.t;
  fc_mirrors : Peer_id.t list;
  fc_subscribers : Peer_id.t list;
  fc_fetch_class : string;
  fc_requests : int;
  fc_completed : int ref;
  fc_unserved : int ref;
}

let flash_crowd ?(mirrors = 8) ?(subscribers = 64) ?(requests_per_subscriber = 4)
    ?(packages = 32) ?(payload_bytes = 256) ?(arrival_window_ms = 500.0)
    ?(think_ms = 5.0) ?transport ?wire ?flush_ms ?ack_delay_ms ~seed () =
  if mirrors < 1 then invalid_arg "Scenarios.flash_crowd: mirrors < 1";
  if subscribers < 0 then invalid_arg "Scenarios.flash_crowd: subscribers < 0";
  let publisher = Peer_id.of_string "origin" in
  let mirror_ids =
    List.init mirrors (fun i -> Peer_id.of_string (Printf.sprintf "mirror%03d" i))
  in
  let sub_ids =
    List.init subscribers (fun i -> Peer_id.of_string (Printf.sprintf "sub%05d" i))
  in
  let topology =
    Axml_net.Topology.clustered
      ~intra:(Axml_net.Link.make ~latency_ms:2.0 ~bandwidth_bytes_per_ms:1000.0)
      ~inter:(Axml_net.Link.make ~latency_ms:20.0 ~bandwidth_bytes_per_ms:200.0)
      [ publisher :: mirror_ids; sub_ids ]
  in
  let sys = System.create ?transport ?wire ?flush_ms ?ack_delay_ms topology in
  let sim = System.sim sys in
  let fetch_class = "fetch_any" in
  (* Mirrors: an extern package-fetch service over a pre-built package
     array, registered as one generic service class. *)
  List.iter
    (fun m ->
      let gen = System.gen_of sys m in
      let pkg_forests =
        Array.init packages (fun i ->
            [
              Tree.element ~gen (l "package")
                ~attrs:
                  [ ("name", Printf.sprintf "pkg%03d" i); ("version", "2.0") ]
                [
                  Tree.element ~gen (l "blob")
                    [ Tree.text (String.make payload_bytes 'x') ];
                ];
            ])
      in
      let fetch params =
        match params with
        | [ (req :: _) ] -> (
            match Tree.attr req "pkg" with
            | Some s ->
                let i = int_of_string s in
                if i >= 0 && i < packages then pkg_forests.(i) else []
            | None -> [])
        | _ -> []
      in
      System.add_service sys m
        (Axml_doc.Service.extern ~name:"fetch"
           ~signature:(Axml_schema.Signature.untyped ~arity:1)
           fetch);
      System.register_service_class sys ~class_name:fetch_class
        (Names.Service_ref.make (Names.Service_name.of_string "fetch") (Names.At m)))
    mirror_ids;
  (* The publisher announces the release to every mirror (the event
     that triggers the crowd). *)
  let pgen = System.gen_of sys publisher in
  List.iter
    (fun m ->
      System.send sys ~src:publisher ~dst:m
        (Axml_peer.Message.Install_doc
           {
             name = "release";
             forest =
               Axml_peer.Message.now
                 [
                   Tree.element ~gen:pgen (l "release")
                     ~attrs:
                       [
                         ("version", "2.0"); ("packages", string_of_int packages);
                       ]
                     [];
                 ];
             notify = None;
           }))
    mirror_ids;
  let completed = ref 0 and unserved = ref 0 in
  (* One request tree per package, shared by every subscriber: the
     fetch service only reads the [pkg] attribute and nothing installs
     these trees, so sharing is safe — and it keeps half a million
     requests from allocating half a million identical elements. *)
  let req_trees =
    let rgen = Axml_xml.Node_id.Gen.create ~namespace:"flash-crowd-req" in
    Array.init packages (fun i ->
        Tree.element ~gen:rgen (l "get") ~attrs:[ ("pkg", string_of_int i) ] [])
  in
  (* Each subscriber runs a closed loop: pick a mirror through the
     generic class, invoke fetch, and on the final response batch
     schedule the next request after a think delay.  The availability
     oracle and catalog are per-subscriber invariants, hoisted out of
     the per-request path. *)
  (* Each request is one cross-peer computation: mint it a fresh
     correlation id so head sampling (see {!Axml_obs.Trace}) keeps or
     drops the whole request — invoke, mirror work, response stream —
     atomically.  Timer callbacks run under the null id, so the guard
     fires exactly once per request; with tracing off the path is
     untouched. *)
  let rec request sub avail catalog sub_rng pick_seed remaining =
    if Axml_obs.Trace.enabled () && Axml_obs.Trace.current_corr () = 0 then
      Axml_obs.Trace.with_corr
        (Axml_obs.Trace.fresh_corr ())
        (fun () -> request sub avail catalog sub_rng pick_seed remaining)
    else
    match
      Axml_doc.Generic.pick_service ~available:avail catalog
        ~policy:(Axml_doc.Generic.Random pick_seed)
        ~class_name:fetch_class
    with
    | None | Some { Names.Service_ref.at = Names.Any; _ } ->
        incr unserved;
        (* SLO breach: no reachable mirror — the request dies here. *)
        if Axml_obs.Trace.sampled () then
          Axml_obs.Trace.instant ~cat:"slo"
            ~peer:(Peer_id.to_string sub)
            ~ts:(Axml_net.Sim.now sim)
            ~args:[ ("class", fetch_class) ]
            "unserved"
    | Some { Names.Service_ref.name = service; at = Names.At provider } ->
        let key = System.fresh_key sys in
        System.set_cont sys key (fun _forest ~final ->
            if final then begin
              incr completed;
              if remaining > 1 then
                Axml_net.Sim.after sim ~peer:sub
                  ~delay_ms:(Rng.float sub_rng think_ms)
                  (fun () ->
                    request sub avail catalog sub_rng pick_seed (remaining - 1))
            end);
        let req = req_trees.(Rng.int sub_rng packages) in
        System.send sys ~src:sub ~dst:provider
          (Axml_peer.Message.Invoke
             {
               service;
               params = [ Axml_peer.Message.now [ req ] ];
               replies = [ Axml_peer.Message.Cont { peer = sub; key } ];
             })
  in
  (* Flash-crowd arrival curve: quadratic ramp concentrating arrivals
     near the release announcement, with a long tail. *)
  let arrival_rng = Rng.create ~seed in
  List.iteri
    (fun k sub ->
      let u = Rng.float arrival_rng 1.0 in
      let at = arrival_window_ms *. u *. u in
      let sub_rng = Rng.create ~seed:((seed * 1_000_003) + k) in
      let pick_seed = seed + k in
      if requests_per_subscriber > 0 then
        Axml_net.Sim.after sim ~peer:sub ~delay_ms:at (fun () ->
            let avail = System.availability sys ~from:sub in
            let catalog = (System.peer sys sub).Axml_peer.Peer.catalog in
            request sub avail catalog sub_rng pick_seed
              requests_per_subscriber))
    sub_ids;
  {
    fc_system = sys;
    fc_publisher = publisher;
    fc_mirrors = mirror_ids;
    fc_subscribers = sub_ids;
    fc_fetch_class = fetch_class;
    fc_requests = subscribers * requests_per_subscriber;
    fc_completed = completed;
    fc_unserved = unserved;
  }

type subscription = {
  sub_system : System.t;
  sub_aggregator : Peer_id.t;
  sub_sources : Peer_id.t list;
  sub_digest_doc : string;
  sub_feed_service : string;
  sub_news_doc : string;
}

let subscription ?(sources = 3) ~seed () =
  let source_ids =
    List.init sources (fun i -> Peer_id.of_string (Printf.sprintf "source%d" i))
  in
  let aggregator = Peer_id.of_string "aggregator" in
  let topology =
    Axml_net.Topology.star ~hub:aggregator
      ~spoke_link:(Axml_net.Link.make ~latency_ms:5.0 ~bandwidth_bytes_per_ms:200.0)
      (aggregator :: source_ids)
  in
  let sys = System.create topology in
  let rng = Rng.create ~seed in
  (* Sources: a news document and a continuous feed over it. *)
  List.iter
    (fun s ->
      let gen = System.gen_of sys s in
      let initial =
        List.init (1 + Rng.int rng 2) (fun i ->
            Tree.element ~gen (l "news")
              ~attrs:[ ("source", Peer_id.to_string s) ]
              [ Tree.text (Printf.sprintf "initial-%s-%d" (Peer_id.to_string s) i) ])
      in
      System.add_document sys s ~name:"news"
        (Tree.element ~gen (l "newsfeed") initial);
      System.add_service sys s
        (Axml_doc.Service.doc_feed ~name:"feed" ~doc:"news"))
    source_ids;
  (* Aggregator: a digest document with one call per source, each
     forwarding into the digest's items node. *)
  let gen = System.gen_of sys aggregator in
  let items = Tree.element ~gen (l "items") [] in
  let items_id = Option.get (Tree.id items) in
  let calls =
    List.map
      (fun s ->
        Axml_doc.Sc.to_tree ~gen
          (Axml_doc.Sc.make
             ~forward:[ Names.Node_ref.make ~node:items_id ~peer:aggregator ]
             ~provider:(Names.At s) ~service:"feed" []))
      source_ids
  in
  System.add_document sys aggregator ~name:"digest"
    (Tree.element ~gen (l "digest") (items :: calls));
  ignore (System.activate_all sys ~peer:aggregator ());
  {
    sub_system = sys;
    sub_aggregator = aggregator;
    sub_sources = source_ids;
    sub_digest_doc = "digest";
    sub_feed_service = "feed";
    sub_news_doc = "news";
  }

let publish sub ~source ~headline =
  let sys = sub.sub_system in
  let peer = System.peer sys source in
  match Axml_doc.Store.find_by_string peer.Axml_peer.Peer.store sub.sub_news_doc with
  | None -> invalid_arg "Scenarios.publish: unknown source document"
  | Some doc -> (
      let gen = System.gen_of sys source in
      let item =
        Tree.element ~gen (l "news")
          ~attrs:[ ("source", Peer_id.to_string source) ]
          [ Tree.text headline ]
      in
      let root = Axml_doc.Document.root doc in
      match Tree.id root with
      | None -> ()
      | Some node ->
          (* Route through the system's own Insert handling so the
             feed's watchers fire. *)
          System.send sys ~src:source ~dst:source
            (Axml_peer.Message.Insert
               { node; forest = Axml_peer.Message.now [ item ]; notify = None }))
