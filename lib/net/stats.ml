type snapshot = {
  messages : int;
  payload_messages : int;
  bytes : int;
  local_messages : int;
  drops : int;
  completion_ms : float;
  per_link : ((Peer_id.t * Peer_id.t) * (int * int)) list;
}

type trace_entry = {
  at_ms : float;
  src : Peer_id.t;
  dst : Peer_id.t;
  trace_bytes : int;
  note : string;
}

(* One mutable cell per directed link, keyed by the packed pair of
   dense peer indexes: recording a send is an int-keyed table probe
   and two in-place increments — no tuple key allocation, no generic
   hashing of peer names (that cost dominated record_send at 10^6
   messages). *)
type link_cell = {
  lsrc : Peer_id.t;
  ldst : Peer_id.t;
  mutable lmsgs : int;
  mutable lbytes : int;
}

type t = {
  mutable messages : int;
  mutable payload_messages : int;
  mutable bytes : int;
  mutable local_messages : int;
  mutable drops : int;
  mutable completion_ms : float;
  per_link : (int, link_cell) Hashtbl.t;
  mutable tracing : bool;
  mutable trace_local : bool;
  mutable trace_rev : trace_entry list;
}

let pack src dst = (Peer_id.index src lsl 31) lor Peer_id.index dst

let create () =
  {
    messages = 0;
    payload_messages = 0;
    bytes = 0;
    local_messages = 0;
    drops = 0;
    completion_ms = 0.0;
    per_link = Hashtbl.create 16;
    tracing = false;
    trace_local = false;
    trace_rev = [];
  }

let record_send ?(at_ms = 0.0) ?(note = "") ?(msgs = 1) t ~src ~dst ~bytes =
  if Peer_id.equal src dst then begin
    t.local_messages <- t.local_messages + 1;
    (* Loopback deliveries are free on the wire but causally real:
       rule (12) intermediary elimination turns remote hops into local
       ones, and hiding them from the trace hides the rule's effect.
       Opt-in so existing remote-only traces stay unchanged. *)
    if t.tracing && t.trace_local then
      t.trace_rev <-
        { at_ms; src; dst; trace_bytes = bytes; note } :: t.trace_rev
  end
  else begin
    t.messages <- t.messages + 1;
    t.payload_messages <- t.payload_messages + msgs;
    t.bytes <- t.bytes + bytes;
    let key = pack src dst in
    (match Hashtbl.find t.per_link key with
    | cell ->
        cell.lmsgs <- cell.lmsgs + 1;
        cell.lbytes <- cell.lbytes + bytes
    | exception Not_found ->
        Hashtbl.add t.per_link key
          { lsrc = src; ldst = dst; lmsgs = 1; lbytes = bytes });
    if t.tracing then
      t.trace_rev <-
        { at_ms; src; dst; trace_bytes = bytes; note } :: t.trace_rev
  end

let record_drop t = t.drops <- t.drops + 1

let set_tracing t enabled = t.tracing <- enabled
let tracing_enabled t = t.tracing
let set_trace_local t enabled = t.trace_local <- enabled
let trace_local_enabled t = t.trace_local
let trace t = List.rev t.trace_rev

let record_time t time = if time > t.completion_ms then t.completion_ms <- time

let snapshot t : snapshot =
  {
    messages = t.messages;
    payload_messages = t.payload_messages;
    bytes = t.bytes;
    local_messages = t.local_messages;
    drops = t.drops;
    completion_ms = t.completion_ms;
    per_link =
      Hashtbl.fold
        (fun _ c acc -> ((c.lsrc, c.ldst), (c.lmsgs, c.lbytes)) :: acc)
        t.per_link []
      |> List.sort compare;
  }

let reset t =
  t.messages <- 0;
  t.payload_messages <- 0;
  t.bytes <- 0;
  t.local_messages <- 0;
  t.drops <- 0;
  t.completion_ms <- 0.0;
  Hashtbl.reset t.per_link;
  t.trace_rev <- []

let pp_trace_entry fmt e =
  Format.fprintf fmt "%8.2fms  %a -> %a  %6dB  %s" e.at_ms Peer_id.pp e.src
    Peer_id.pp e.dst e.trace_bytes e.note

let pp_snapshot fmt (s : snapshot) =
  Format.fprintf fmt
    "@[<v>messages: %d (+%d local)@ bytes: %d@ drops: %d@ completion: %.2f ms@ "
    s.messages s.local_messages s.bytes s.drops s.completion_ms;
  if s.payload_messages <> s.messages then
    Format.fprintf fmt "payload messages: %d@ " s.payload_messages;
  List.iter
    (fun ((src, dst), (m, b)) ->
      Format.fprintf fmt "%a -> %a: %d msg, %d B@ " Peer_id.pp src Peer_id.pp
        dst m b)
    s.per_link;
  Format.fprintf fmt "@]"
