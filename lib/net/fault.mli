(** Deterministic, seeded fault injection for {!Sim}.

    A fault plan describes a hostile network as pure data:
    probabilistic per-link behaviour (message drop, duplication,
    delivery jitter), scheduled link outages and network partitions,
    and peer crash/restart events. Attach a plan to a simulator with
    {!Sim.inject}; every probabilistic choice is drawn from a
    {!Rng} stream seeded by the plan and consumed in event order, so
    runs are bit-reproducible per seed (FoundationDB-style simulation
    testing). *)

type link_profile = {
  drop : float;  (** probability a message vanishes in flight *)
  duplicate : float;  (** probability a second copy is delivered *)
  jitter_ms : float;  (** extra delivery delay, uniform in [0, jitter) *)
}

val perfect : link_profile

type window = { from_ms : float; until_ms : float }

val window : from_ms:float -> until_ms:float -> window
(** @raise Invalid_argument if [until_ms < from_ms]. *)

type event =
  | Link_down of { src : Peer_id.t; dst : Peer_id.t; window : window }
      (** Both directions of the link are cut during [window]. *)
  | Partition of { island : Peer_id.t list; window : window }
      (** Messages crossing the island boundary are cut during
          [window]. *)
  | Crash of { peer : Peer_id.t; at_ms : float; restart_ms : float option }
      (** The peer loses its handler and volatile state at [at_ms];
          with [restart_ms] it comes back (empty) at that time and
          the runtime may reload it from a checkpoint. *)

type plan

val make :
  ?profile:link_profile ->
  ?overrides:((Peer_id.t * Peer_id.t) * link_profile) list ->
  ?events:event list ->
  ?quiet_after_ms:float ->
  seed:int ->
  unit ->
  plan
(** [overrides] replace [profile] for specific directed links.
    Probabilistic faults cease at [quiet_after_ms] (default
    [infinity]); set it to guarantee eventual connectivity. *)

val random :
  ?max_drop:float ->
  ?max_duplicate:float ->
  ?max_jitter_ms:float ->
  ?max_outages:int ->
  ?horizon_ms:float ->
  seed:int ->
  Peer_id.t list ->
  plan
(** A deterministic plan derived from [seed]: a random link profile
    plus up to [max_outages] outages/partitions, all confined to
    [horizon_ms], after which the network is quiet — eventual
    connectivity holds. Random plans never contain crashes (crash
    recovery is covered by directed tests). *)

val seed : plan -> int
val events : plan -> event list
val quiet_after_ms : plan -> float

(** Mutable per-run state: the plan plus its RNG stream. *)
type state

val attach : plan -> state

val cut : state -> now:float -> src:Peer_id.t -> dst:Peer_id.t -> bool
(** Is the link severed at [now] by an outage or partition? *)

type verdict =
  | Dropped
  | Deliver of { jitters_ms : float list }
      (** One delivery per element; two elements = a duplicate. *)

val on_send : state -> now:float -> src:Peer_id.t -> dst:Peer_id.t -> verdict
(** Consult (and advance) the probabilistic stream for one send. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> plan -> unit
