type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (x /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | list -> List.nth list (int t (List.length list))

let shuffle t list =
  list
  |> List.map (fun x -> (next t, x))
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)
  |> List.map snd
