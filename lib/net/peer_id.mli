(** Peer identifiers.

    "We assume given a finite set of peers, each of which is
    characterized by a distinct peer identifier p ∈ P" (Section 2). *)

type t

val of_string : string -> t
(** Identifiers are interned: equal names yield the same value, and
    each distinct name gets a dense creation-order {!index}.
    @raise Invalid_argument on the empty string or strings containing
    ['@'] or whitespace (those characters delimit [d\@p] / [n\@p]
    notations). *)

val of_string_opt : string -> t option

val to_string : t -> string
(** O(1): the name is stored in the identifier, not rebuilt. *)

val index : t -> int
(** Dense process-wide index (creation order), suitable as a direct
    array subscript for per-peer slots. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
