(** Discrete-event network simulator.

    Peers exchange messages over a {!Topology.t}; a virtual clock
    advances from delivery to delivery.  Handlers run at delivery time
    and may send further messages, schedule timers or consume local
    CPU time.  The simulator is deterministic: equal-time events fire
    in scheduling order.

    The payload type is a parameter — the simulator knows nothing
    about AXML; {!module:Axml_peer} instantiates it with algebra
    messages. *)

type 'a t

type outcome = [ `Quiescent | `Budget_exhausted ]
(** How a {!run} ended: the queue drained (or nothing is left before
    the time horizon), or the [max_events] divergence guard fired with
    deliverable events still pending — indistinguishable outcomes
    before this type existed, which silently truncated runs. *)

val create : Topology.t -> 'a t
val topology : 'a t -> Topology.t
val now : 'a t -> float
(** Current virtual time in milliseconds. *)

val stats : 'a t -> Stats.t

val set_handler : 'a t -> Peer_id.t -> (src:Peer_id.t -> 'a -> unit) -> unit
(** Install the message handler of a peer, replacing any previous one.
    Messages delivered to a peer without a handler raise during
    {!run}. *)

val send :
  ?note:string -> 'a t -> src:Peer_id.t -> dst:Peer_id.t -> bytes:int -> 'a -> unit
(** Enqueue a message.  It departs no earlier than the sender's busy
    horizon and arrives after the link's transfer time.  [note] labels
    the message in the statistics trace (see {!Stats.set_tracing}).
    @raise Not_found if either peer is outside the topology. *)

val after : 'a t -> peer:Peer_id.t -> delay_ms:float -> (unit -> unit) -> unit
(** Schedule a local callback on [peer] at [now + delay_ms]. *)

val consume_cpu : 'a t -> peer:Peer_id.t -> ms:float -> unit
(** Model local computation: pushes the peer's busy horizon forward so
    that subsequent sends from this peer depart later.  The duration
    is scaled by the peer's CPU factor. *)

val set_cpu_factor : 'a t -> Peer_id.t -> float -> unit
(** Heterogeneous peers: a factor of 2.0 makes computation twice as
    slow there, 0.5 twice as fast.  Default 1.0.
    @raise Invalid_argument on non-positive factors. *)

val cpu_factor : 'a t -> Peer_id.t -> float

val busy_until : 'a t -> Peer_id.t -> float

exception No_handler of Peer_id.t

val run : ?until_ms:float -> ?max_events:int -> 'a t -> outcome * int
(** Process events in time order until the queue drains (quiescence),
    the clock passes [until_ms], or [max_events] deliveries have been
    processed (a divergence guard for continuous services;
    default 1_000_000).  Returns how the run ended together with the
    number of events processed: [`Budget_exhausted] means the guard
    cut the run with deliverable events still pending — callers should
    surface it rather than mistake the truncation for quiescence.

    When {!Axml_obs.Trace} is enabled, every delivery and timer is
    recorded as a virtual-time span on the destination peer's track;
    when {!Axml_obs.Metrics} is enabled, event counts and the queue's
    high-water depth are recorded.  Both disabled paths cost one
    boolean load per event.
    @raise No_handler on delivery to a handler-less peer. *)

val pending : 'a t -> int
(** Number of queued events. *)
