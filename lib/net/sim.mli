(** Discrete-event network simulator.

    Peers exchange messages over a {!Topology.t}; a virtual clock
    advances from delivery to delivery.  Handlers run at delivery time
    and may send further messages, schedule timers or consume local
    CPU time.  The simulator is deterministic: equal-time events fire
    in scheduling order.  An attached {!Fault} plan ({!inject}) makes
    the network hostile — drops, duplicates, jitter, outages,
    partitions, crashes — while keeping runs bit-reproducible per
    seed.

    The payload type is a parameter — the simulator knows nothing
    about AXML; {!module:Axml_peer} instantiates it with algebra
    messages. *)

type 'a t

type outcome = [ `Quiescent | `Budget_exhausted ]
(** How a {!run} ended: the queue drained (or nothing is left before
    the time horizon), or the [max_events] divergence guard fired with
    deliverable events still pending — indistinguishable outcomes
    before this type existed, which silently truncated runs. *)

val create : Topology.t -> 'a t
val topology : 'a t -> Topology.t
val now : 'a t -> float
(** Current virtual time in milliseconds. *)

val stats : 'a t -> Stats.t

val set_handler : 'a t -> Peer_id.t -> (src:Peer_id.t -> 'a -> unit) -> unit
(** Install the message handler of a peer, replacing any previous one.
    Messages delivered to a peer without a handler are counted as
    drops (see {!Stats.snapshot}[.drops]), not raised. *)

val send :
  ?note:string ->
  ?msgs:int ->
  'a t ->
  src:Peer_id.t ->
  dst:Peer_id.t ->
  bytes:int ->
  'a ->
  unit
(** Enqueue a message.  It departs no earlier than the sender's busy
    horizon and arrives after the link's transfer time (plus any
    fault-injected jitter; an injected fault plan may also drop or
    duplicate it).  [note] labels the message in the statistics trace
    (see {!Stats.set_tracing}); [msgs] (default [1]) is the number of
    logical messages the frame carries — a batching transport passes
    the item count so {!Stats.snapshot}[.payload_messages] stays a
    physical-independent measure of traffic.
    @raise Not_found if either peer is outside the topology. *)

val after : 'a t -> peer:Peer_id.t -> delay_ms:float -> (unit -> unit) -> unit
(** Schedule a local callback on [peer] at [now + delay_ms].  Timers
    model volatile state: one firing while its peer is crashed is
    silently discarded. *)

val at : 'a t -> time:float -> (unit -> unit) -> unit
(** Schedule a peer-independent control callback at absolute sim time
    [time] (clamped to [now]).  Control events always run — they are
    not tied to a peer's liveness and do not count toward the run's
    completion time — which makes them the right vehicle for
    system-level controllers (e.g. the placement tick) that must keep
    observing across crashes. *)

val after_cancellable :
  'a t -> peer:Peer_id.t -> delay_ms:float -> (unit -> unit) -> unit -> unit
(** Like {!after}, but returns a cancel thunk.  A cancelled timer is
    inert: it neither runs nor extends the run's completion time —
    retransmission timers pre-empted by their ack must not stretch
    [completion_ms] past the last real event. *)

val consume_cpu : 'a t -> peer:Peer_id.t -> ms:float -> unit
(** Model local computation: pushes the peer's busy horizon forward so
    that subsequent sends from this peer depart later.  The duration
    is scaled by the peer's CPU factor. *)

val set_cpu_factor : 'a t -> Peer_id.t -> float -> unit
(** Heterogeneous peers: a factor of 2.0 makes computation twice as
    slow there, 0.5 twice as fast.  Default 1.0.
    @raise Invalid_argument on non-positive factors. *)

val cpu_factor : 'a t -> Peer_id.t -> float

val busy_until : 'a t -> Peer_id.t -> float

(** {2 Faults} *)

val inject : 'a t -> Fault.plan -> unit
(** Attach a fault plan: probabilistic per-link faults take effect on
    subsequent sends, and the plan's crash/restart events are
    scheduled as control events (which always run and do not count
    toward completion time). *)

val crash : 'a t -> Peer_id.t -> unit
(** Take a peer down now: its pending timers die, messages addressed
    to it are dropped, and the [on_crash] hook runs (the runtime uses
    it to discard the peer's volatile state).  Idempotent. *)

val restart : 'a t -> Peer_id.t -> unit
(** Bring a crashed peer back (empty); the [on_restart] hook runs
    (the runtime uses it to reload a checkpoint).  No-op if the peer
    is not crashed. *)

val is_crashed : 'a t -> Peer_id.t -> bool

val set_crash_hooks :
  'a t -> on_crash:(Peer_id.t -> unit) -> on_restart:(Peer_id.t -> unit) -> unit

val reachable : 'a t -> src:Peer_id.t -> dst:Peer_id.t -> bool
(** Best-effort liveness oracle at current virtual time: [dst] is not
    crashed and no scheduled outage/partition currently cuts the
    link.  This is the membership filter generic ([d\@any]/[s\@any])
    resolution uses to degrade gracefully. *)

val run : ?until_ms:float -> ?max_events:int -> 'a t -> outcome * int
(** Process events in time order until the queue drains (quiescence),
    the clock passes [until_ms], or [max_events] deliveries have been
    processed (a divergence guard for continuous services;
    default 1_000_000).  Returns how the run ended together with the
    number of events processed: [`Budget_exhausted] means the guard
    cut the run with deliverable events still pending — callers should
    surface it rather than mistake the truncation for quiescence.

    A delivery to a crashed or handler-less peer is a routable fault:
    it is counted ({!Stats} drops, [net/drops] metric, a trace
    instant) and the run continues.

    When {!Axml_obs.Trace} is enabled, every delivery and timer is
    recorded as a virtual-time span on the destination peer's track;
    when {!Axml_obs.Metrics} is enabled, event counts and the queue's
    high-water depth are recorded.  Both disabled paths cost one
    boolean load per event. *)

val pending : 'a t -> int
(** Number of queued events. *)
