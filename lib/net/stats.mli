(** Transfer statistics.

    The quantities the paper's optimizations trade in: messages sent,
    bytes shipped (total and per directed link), and the virtual time
    at which the system went quiescent. *)

type t

type snapshot = {
  messages : int;  (** Physical frames on the wire. *)
  payload_messages : int;
      (** Logical messages carried: a batched frame (see
          {!Axml_peer.Message.Batch}) counts once in [messages] but
          its item count here.  Equal to [messages] when no transport
          batches. *)
  bytes : int;
  local_messages : int;  (** Loopback deliveries, not counted in [bytes]. *)
  drops : int;
      (** Messages lost to injected faults: dropped in flight by a
          lossy/cut link, or discarded on arrival at a crashed (or
          handler-less) peer. Not counted in [messages]/[bytes] when
          dropped at send time. *)
  completion_ms : float;  (** Time of the last processed event. *)
  per_link : ((Peer_id.t * Peer_id.t) * (int * int)) list;
      (** (src, dst) -> (messages, bytes), remote links only. *)
}

type trace_entry = {
  at_ms : float;  (** Virtual send time. *)
  src : Peer_id.t;
  dst : Peer_id.t;
  trace_bytes : int;
  note : string;  (** Message kind, e.g. ["invoke find/1"]. *)
}

val create : unit -> t

val record_send :
  ?at_ms:float ->
  ?note:string ->
  ?msgs:int ->
  t ->
  src:Peer_id.t ->
  dst:Peer_id.t ->
  bytes:int ->
  unit
(** [msgs] (default [1]) is the number of logical messages the frame
    carries; it only feeds [payload_messages]. *)

val record_drop : t -> unit
val record_time : t -> float -> unit
val snapshot : t -> snapshot
val reset : t -> unit
(** Clears counters and the trace; tracing stays in its current
    enabled/disabled state. *)

val set_tracing : t -> bool -> unit
(** Record a {!trace_entry} per remote message (off by default; local
    messages are only traced when {!set_trace_local} is also on). *)

val tracing_enabled : t -> bool

val set_trace_local : t -> bool -> unit
(** Also record loopback ([src = dst]) deliveries in the trace while
    tracing is on (off by default).  Local messages never count toward
    [bytes] — but making them visible is what lets rule-(12)
    intermediary elimination show up in a trace instead of silently
    disappearing. *)

val trace_local_enabled : t -> bool

val trace : t -> trace_entry list
(** Recorded entries, oldest first. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
val pp_trace_entry : Format.formatter -> trace_entry -> unit
