module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module Timeseries = Axml_obs.Timeseries

type 'a event =
  | Deliver of { src : Peer_id.t; dst : Peer_id.t; payload : 'a }
  | Timer of { peer : Peer_id.t; callback : unit -> unit }
  | Control of { callback : unit -> unit }
      (* Fault-plan machinery (crashes, restarts). Runs regardless of
         peer liveness and does not count toward completion time: a
         scheduled restart at t=500ms must not stretch a run that went
         quiescent at t=80ms. *)

(* Per-peer net/* counter handles, created lazily and only while
   metrics are enabled, so the disabled path allocates nothing. *)
type net_handles = {
  h_local : Metrics.counter_handle;
  h_msgs : Metrics.counter_handle;
  h_payload : Metrics.counter_handle;
  h_bytes : Metrics.counter_handle;
  h_cpu : Metrics.hist_handle;
}

(* Per-peer windowed series behind [axmlctl top]: transmitted bytes
   (one observation per remote transmission, value = bytes) and the
   modelled link latency of each transmission. *)
type ts_handles = {
  t_tx : Timeseries.handle;
  t_lat : Timeseries.handle;
}

(* Per-directed-link series ([net/link/<src>-><dst>/*]) — the
   observed-load signal a placement controller reads per link. *)
type link_handles = {
  l_bytes : Timeseries.handle;
  l_lat : Timeseries.handle;
}

(* All per-peer state, reached by one array load from the peer's dense
   {!Peer_id.index} — the string-keyed hashtable lookups (and their
   per-event hashing) this replaces dominated the event loop at 10^3
   peers. *)
type 'a slot = {
  speer : Peer_id.t;
  mutable handler : (src:Peer_id.t -> 'a -> unit) option;
  mutable busy : float;
  mutable factor : float;
  mutable crashed_at : float;  (* < 0.0 = alive *)
  mutable net : net_handles option;
  mutable ts : ts_handles option;
}

type 'a t = {
  topology : Topology.t;
  queue : 'a event Pqueue.t;
  mutable slots : 'a slot option array;  (* indexed by Peer_id.index *)
  stats : Stats.t;
  mutable now : float;
  mutable fault : Fault.state option;
  mutable on_crash : Peer_id.t -> unit;
  mutable on_restart : Peer_id.t -> unit;
  h_events : Metrics.counter_handle;
  h_qdepth : Metrics.gauge_handle;
  ts_links : (int, link_handles) Hashtbl.t;  (* packed (src, dst) indexes *)
}

type outcome = [ `Quiescent | `Budget_exhausted ]

let fresh_slot peer =
  {
    speer = peer;
    handler = None;
    busy = 0.0;
    factor = 1.0;
    crashed_at = -1.0;
    net = None;
    ts = None;
  }

let create topology =
  let top_idx =
    List.fold_left
      (fun acc p -> max acc (Peer_id.index p))
      (-1)
      (Topology.peers topology)
  in
  let slots = Array.make (max 16 (top_idx + 1)) None in
  List.iter
    (fun p -> slots.(Peer_id.index p) <- Some (fresh_slot p))
    (Topology.peers topology);
  let t =
    {
      topology;
      queue = Pqueue.create ();
      slots;
      stats = Stats.create ();
      now = 0.0;
      fault = None;
      on_crash = ignore;
      on_restart = ignore;
      h_events = Metrics.counter_handle Metrics.default ~subsystem:"sim" "events";
      h_qdepth =
        Metrics.gauge_handle Metrics.default ~subsystem:"sim" "queue_depth";
      ts_links = Hashtbl.create 64;
    }
  in
  (* The most recently created simulator drives the default windowed
     telemetry's clock: window epochs follow virtual time, so
     recordings anywhere in the process (stores included, which have
     no simulator reference) stay deterministic.  Harnesses comparing
     several systems run them one at a time. *)
  Timeseries.set_clock Timeseries.default (fun () -> t.now);
  t

let slot t peer =
  let i = Peer_id.index peer in
  let n = Array.length t.slots in
  if i >= n then begin
    let slots = Array.make (max (i + 1) (2 * n)) None in
    Array.blit t.slots 0 slots 0 n;
    t.slots <- slots
  end;
  match t.slots.(i) with
  | Some s -> s
  | None ->
      let s = fresh_slot peer in
      t.slots.(i) <- Some s;
      s

let net_handles s =
  match s.net with
  | Some h -> h
  | None ->
      let peer = Peer_id.to_string s.speer in
      let h =
        {
          h_local =
            Metrics.counter_handle Metrics.default ~peer ~subsystem:"net"
              "local_messages";
          h_msgs =
            Metrics.counter_handle Metrics.default ~peer ~subsystem:"net"
              "messages_sent";
          h_payload =
            Metrics.counter_handle Metrics.default ~peer ~subsystem:"net"
              "payload_messages";
          h_bytes =
            Metrics.counter_handle Metrics.default ~peer ~subsystem:"net"
              "bytes_sent";
          h_cpu =
            Metrics.hist_handle Metrics.default ~peer ~subsystem:"peer" "cpu_ms";
        }
      in
      s.net <- Some h;
      h

let ts_handles s =
  match s.ts with
  | Some h -> h
  | None ->
      let peer = Peer_id.to_string s.speer in
      let h =
        {
          t_tx = Timeseries.handle Timeseries.default ("peer/" ^ peer ^ "/tx");
          t_lat =
            Timeseries.handle Timeseries.default ("peer/" ^ peer ^ "/latency_ms");
        }
      in
      s.ts <- Some h;
      h

let link_series t ~src ~dst =
  let key = (Peer_id.index src lsl 31) lor Peer_id.index dst in
  match Hashtbl.find_opt t.ts_links key with
  | Some h -> h
  | None ->
      let name = Peer_id.to_string src ^ "->" ^ Peer_id.to_string dst in
      let h =
        {
          l_bytes =
            Timeseries.handle Timeseries.default ("net/link/" ^ name ^ "/bytes");
          l_lat =
            Timeseries.handle Timeseries.default
              ("net/link/" ^ name ^ "/latency_ms");
        }
      in
      Hashtbl.add t.ts_links key h;
      h

let topology t = t.topology
let now t = t.now
let stats t = t.stats
let set_handler t peer f = (slot t peer).handler <- Some f
let busy_until t peer = (slot t peer).busy
let cpu_factor t peer = (slot t peer).factor

let set_cpu_factor t peer factor =
  if factor <= 0.0 then invalid_arg "Sim.set_cpu_factor: factor must be positive";
  (slot t peer).factor <- factor

let consume_cpu t ~peer ~ms =
  if ms < 0.0 then invalid_arg "Sim.consume_cpu: negative duration";
  let s = slot t peer in
  let virtual_ms = ms *. s.factor in
  let horizon = max t.now s.busy +. virtual_ms in
  s.busy <- horizon;
  if Metrics.is_on Metrics.default then
    Metrics.observe_h (net_handles s).h_cpu virtual_ms;
  (* Computation extends the run's completion time even when no
     further message departs from this peer. *)
  Stats.record_time t.stats horizon

(* --- faults ------------------------------------------------------ *)

let is_crashed t peer = (slot t peer).crashed_at >= 0.0

let set_crash_hooks t ~on_crash ~on_restart =
  t.on_crash <- on_crash;
  t.on_restart <- on_restart

let crash t peer =
  let s = slot t peer in
  if s.crashed_at < 0.0 then begin
    s.crashed_at <- t.now;
    if Metrics.is_on Metrics.default then
      Metrics.incr Metrics.default ~peer:(Peer_id.to_string peer)
        ~subsystem:"fault" "crashes";
    if Trace.enabled () then
      Trace.instant ~cat:"fault" ~peer:(Peer_id.to_string peer) ~ts:t.now
        "crash";
    t.on_crash peer
  end

let restart t peer =
  let s = slot t peer in
  if s.crashed_at >= 0.0 then begin
    let since = s.crashed_at in
    s.crashed_at <- -1.0;
    if Metrics.is_on Metrics.default then
      Metrics.incr Metrics.default ~peer:(Peer_id.to_string peer)
        ~subsystem:"fault" "restarts";
    if Trace.enabled () then begin
      (* One retrospective span covering the whole outage. *)
      Trace.complete ~cat:"fault" ~peer:(Peer_id.to_string peer) ~ts:since
        ~dur_ms:(t.now -. since) "crashed";
      Trace.instant ~cat:"fault" ~peer:(Peer_id.to_string peer) ~ts:t.now
        "restart"
    end;
    t.on_restart peer
  end

let reachable t ~src ~dst =
  (not (is_crashed t dst))
  &&
  match t.fault with
  | None -> true
  | Some f -> not (Fault.cut f ~now:t.now ~src ~dst)

let record_drop t ~peer ~reason =
  Stats.record_drop t.stats;
  if Metrics.is_on Metrics.default then
    Metrics.incr Metrics.default ~peer:(Peer_id.to_string peer)
      ~subsystem:"net" "drops";
  if Trace.sampled () then
    Trace.instant ~cat:"fault" ~peer:(Peer_id.to_string peer) ~ts:t.now
      ~args:[ ("reason", reason) ]
      "drop"

let at t ~time callback =
  Pqueue.push t.queue ~time:(max t.now time) (Control { callback })

let inject t plan =
  t.fault <- Some (Fault.attach plan);
  List.iter
    (function
      | Fault.Crash { peer; at_ms; restart_ms } ->
          at t ~time:at_ms (fun () -> crash t peer);
          Option.iter
            (fun r -> at t ~time:r (fun () -> restart t peer))
            restart_ms
      | Fault.Link_down _ | Fault.Partition _ ->
          (* Pure windows, consulted at send time. *)
          ())
    (Fault.events plan)

(* --- sending ----------------------------------------------------- *)

(* Per-peer send metrics mirror Stats exactly — per transmission that
   actually leaves the sender, including retransmissions and
   fault-injected duplicates; bytes count remote messages only,
   loopbacks are tallied separately — so the metrics table and
   Stats.snapshot agree to the byte. *)
let count_send_metrics t ~src ~dst ~bytes ~msgs =
  if Metrics.is_on Metrics.default then begin
    let h = net_handles (slot t src) in
    if Peer_id.equal src dst then Metrics.incr_h h.h_local ~by:1
    else begin
      Metrics.incr_h h.h_msgs ~by:1;
      Metrics.incr_h h.h_payload ~by:msgs;
      Metrics.incr_h h.h_bytes ~by:bytes
    end
  end

let transmit ?note ?(msgs = 1) t ~link ~departure ~jitter_ms ~src ~dst ~bytes
    payload =
  let arrival = departure +. Link.transfer_ms link ~bytes +. jitter_ms in
  Stats.record_send ~at_ms:departure ?note ~msgs t.stats ~src ~dst ~bytes;
  count_send_metrics t ~src ~dst ~bytes ~msgs;
  (* Every instrumentation block sits behind one boolean load so that
     the disabled hot path allocates nothing (checked in the E16/E21
     benches); tracing additionally gates on the sampling decision,
     so a sampled-out transmission allocates nothing either. *)
  (if Timeseries.is_on Timeseries.default && not (Peer_id.equal src dst) then begin
     let lat = arrival -. departure in
     let ph = ts_handles (slot t src) in
     Timeseries.record_at ph.t_tx ~ts:departure (float_of_int bytes);
     Timeseries.record_at ph.t_lat ~ts:departure lat;
     let lh = link_series t ~src ~dst in
     Timeseries.record_at lh.l_bytes ~ts:departure (float_of_int bytes);
     Timeseries.record_at lh.l_lat ~ts:departure lat
   end);
  if Trace.sampled () then begin
    let args =
      let base =
        [ ("dst", Peer_id.to_string dst); ("bytes", string_of_int bytes) ]
      in
      match note with Some n -> ("note", n) :: base | None -> base
    in
    Trace.complete ~cat:"net"
      ~peer:(Peer_id.to_string src)
      ~ts:departure
      ~dur_ms:(arrival -. departure)
      ~args "xfer"
  end;
  Pqueue.push t.queue ~time:arrival (Deliver { src; dst; payload })

let send ?note ?msgs t ~src ~dst ~bytes payload =
  let link = Topology.link t.topology ~src ~dst in
  let departure = max t.now (busy_until t src) in
  match t.fault with
  | None ->
      transmit ?note ?msgs t ~link ~departure ~jitter_ms:0.0 ~src ~dst ~bytes
        payload
  | Some _ when Peer_id.equal src dst ->
      (* Loopback never traverses the network; faults don't apply. *)
      transmit ?note ?msgs t ~link ~departure ~jitter_ms:0.0 ~src ~dst ~bytes
        payload
  | Some f -> (
      match Fault.on_send f ~now:departure ~src ~dst with
      | Fault.Dropped -> record_drop t ~peer:src ~reason:"link"
      | Fault.Deliver { jitters_ms } ->
          List.iter
            (fun jitter_ms ->
              transmit ?note ?msgs t ~link ~departure ~jitter_ms ~src ~dst
                ~bytes payload)
            jitters_ms)

let after t ~peer ~delay_ms callback =
  if delay_ms < 0.0 then invalid_arg "Sim.after: negative delay";
  Pqueue.push t.queue ~time:(t.now +. delay_ms) (Timer { peer; callback })

let after_cancellable t ~peer ~delay_ms callback =
  if delay_ms < 0.0 then invalid_arg "Sim.after: negative delay";
  (* True removal: a cancelled timer leaves the queue (satellite of the
     scaling refactor), so it neither inflates {!pending} nor lingers
     in the heap until its time comes up. *)
  Pqueue.push_removable t.queue
    ~time:(t.now +. delay_ms)
    (Timer { peer; callback })

let pending t = Pqueue.length t.queue

let run ?until_ms ?(max_events = 1_000_000) t =
  (* The instrumentation flags are sampled once per run, not per event:
     the hot loop pays one branch, and toggling tracing or metrics from
     inside a handler takes effect at the next [run]. *)
  let metrics_on = Metrics.is_on Metrics.default in
  let trace_on = Trace.enabled () in
  let processed = ref 0 in
  (* The queue-depth gauge is a high-water mark, so only a new maximum
     needs to reach the registry — the common case is an integer
     compare with no float boxing. *)
  let qdepth_hw = ref (-1) in
  let more_events () =
    match (Pqueue.peek_time t.queue, until_ms) with
    | None, _ -> false
    | Some time, Some limit -> time <= limit
    | Some _, None -> true
  in
  (* With no [until_ms] horizon (the common case) the loop condition is
     a pair of integer reads and [Pqueue.take] pops without allocating;
     the [peek_time]/[pop] option path only runs under a horizon. *)
  let continue () =
    !processed < max_events
    && if until_ms = None then not (Pqueue.is_empty t.queue) else more_events ()
  in
  while continue () do
    match Pqueue.take t.queue with
    | exception Pqueue.Empty -> ()
    | event ->
        t.now <- max t.now (Pqueue.last_time t.queue);
        incr processed;
        if metrics_on then begin
          Metrics.incr_h t.h_events ~by:1;
          let depth = Pqueue.length t.queue + 1 in
          if depth > !qdepth_hw then begin
            qdepth_hw := depth;
            Metrics.gauge_max_h t.h_qdepth (float_of_int depth)
          end
        end;
        (match event with
        | Deliver { src; dst; payload } -> (
            Stats.record_time t.stats t.now;
            (* A message arriving at a dead (or never-installed)
               destination is a routable fault, not an abort: the
               bytes were spent, the payload is gone, the run goes
               on.  Counted in net/drops. *)
            let s = slot t dst in
            if s.crashed_at >= 0.0 then
              record_drop t ~peer:dst ~reason:"crashed"
            else
              match s.handler with
              | None -> record_drop t ~peer:dst ~reason:"no-handler"
              | Some handler ->
                  if trace_on && Trace.sampled () then begin
                    let sid =
                      Trace.begin_span ~cat:"sim"
                        ~peer:(Peer_id.to_string dst)
                        ~ts:t.now
                        ~args:[ ("src", Peer_id.to_string src) ]
                        "deliver"
                    in
                    handler ~src payload;
                    (* The handler's virtual footprint: any CPU it
                       consumed pushed the peer's busy horizon past
                       [now]. *)
                    Trace.end_span sid ~ts:(max t.now s.busy)
                  end
                  else handler ~src payload)
        | Timer { peer; callback } ->
            Stats.record_time t.stats t.now;
            (* Timers model volatile local state; a crashed peer's
               timers fire into the void. *)
            let s = slot t peer in
            if s.crashed_at < 0.0 then
              if trace_on && Trace.sampled () then begin
                let sid =
                  Trace.begin_span ~cat:"sim"
                    ~peer:(Peer_id.to_string peer)
                    ~ts:t.now "timer"
                in
                callback ();
                Trace.end_span sid ~ts:(max t.now s.busy)
              end
              else callback ()
        | Control { callback } -> callback ())
  done;
  let outcome : outcome =
    if !processed >= max_events && more_events () then `Budget_exhausted
    else `Quiescent
  in
  (outcome, !processed)
