module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics

type 'a event =
  | Deliver of { src : Peer_id.t; dst : Peer_id.t; payload : 'a }
  | Timer of { peer : Peer_id.t; callback : unit -> unit; cancelled : bool ref }
  | Control of { callback : unit -> unit }
      (* Fault-plan machinery (crashes, restarts). Runs regardless of
         peer liveness and does not count toward completion time: a
         scheduled restart at t=500ms must not stretch a run that went
         quiescent at t=80ms. *)

type 'a t = {
  topology : Topology.t;
  queue : 'a event Pqueue.t;
  handlers : (src:Peer_id.t -> 'a -> unit) Peer_id.Table.t;
  busy : float Peer_id.Table.t;
  cpu_factors : float Peer_id.Table.t;
  stats : Stats.t;
  mutable now : float;
  mutable fault : Fault.state option;
  crashed : float Peer_id.Table.t;  (* peer -> crash time *)
  mutable on_crash : Peer_id.t -> unit;
  mutable on_restart : Peer_id.t -> unit;
}

type outcome = [ `Quiescent | `Budget_exhausted ]

let create topology =
  {
    topology;
    queue = Pqueue.create ();
    handlers = Peer_id.Table.create 16;
    busy = Peer_id.Table.create 16;
    cpu_factors = Peer_id.Table.create 16;
    stats = Stats.create ();
    now = 0.0;
    fault = None;
    crashed = Peer_id.Table.create 4;
    on_crash = ignore;
    on_restart = ignore;
  }

let topology t = t.topology
let now t = t.now
let stats t = t.stats
let set_handler t peer f = Peer_id.Table.replace t.handlers peer f

let busy_until t peer =
  Option.value ~default:0.0 (Peer_id.Table.find_opt t.busy peer)

let cpu_factor t peer =
  Option.value ~default:1.0 (Peer_id.Table.find_opt t.cpu_factors peer)

let set_cpu_factor t peer factor =
  if factor <= 0.0 then invalid_arg "Sim.set_cpu_factor: factor must be positive";
  Peer_id.Table.replace t.cpu_factors peer factor

let consume_cpu t ~peer ~ms =
  if ms < 0.0 then invalid_arg "Sim.consume_cpu: negative duration";
  let virtual_ms = ms *. cpu_factor t peer in
  let horizon = max t.now (busy_until t peer) +. virtual_ms in
  Peer_id.Table.replace t.busy peer horizon;
  if Metrics.is_on Metrics.default then
    Metrics.observe Metrics.default ~peer:(Peer_id.to_string peer)
      ~subsystem:"peer" "cpu_ms" virtual_ms;
  (* Computation extends the run's completion time even when no
     further message departs from this peer. *)
  Stats.record_time t.stats horizon

(* --- faults ------------------------------------------------------ *)

let is_crashed t peer = Peer_id.Table.mem t.crashed peer

let set_crash_hooks t ~on_crash ~on_restart =
  t.on_crash <- on_crash;
  t.on_restart <- on_restart

let crash t peer =
  if not (is_crashed t peer) then begin
    Peer_id.Table.replace t.crashed peer t.now;
    if Metrics.is_on Metrics.default then
      Metrics.incr Metrics.default ~peer:(Peer_id.to_string peer)
        ~subsystem:"fault" "crashes";
    if Trace.enabled () then
      Trace.instant ~cat:"fault" ~peer:(Peer_id.to_string peer) ~ts:t.now
        "crash";
    t.on_crash peer
  end

let restart t peer =
  match Peer_id.Table.find_opt t.crashed peer with
  | None -> ()
  | Some since ->
      Peer_id.Table.remove t.crashed peer;
      if Metrics.is_on Metrics.default then
        Metrics.incr Metrics.default ~peer:(Peer_id.to_string peer)
          ~subsystem:"fault" "restarts";
      if Trace.enabled () then begin
        (* One retrospective span covering the whole outage. *)
        Trace.complete ~cat:"fault" ~peer:(Peer_id.to_string peer) ~ts:since
          ~dur_ms:(t.now -. since) "crashed";
        Trace.instant ~cat:"fault" ~peer:(Peer_id.to_string peer) ~ts:t.now
          "restart"
      end;
      t.on_restart peer

let reachable t ~src ~dst =
  (not (is_crashed t dst))
  &&
  match t.fault with
  | None -> true
  | Some f -> not (Fault.cut f ~now:t.now ~src ~dst)

let record_drop t ~peer ~reason =
  Stats.record_drop t.stats;
  if Metrics.is_on Metrics.default then
    Metrics.incr Metrics.default ~peer:(Peer_id.to_string peer)
      ~subsystem:"net" "drops";
  if Trace.enabled () then
    Trace.instant ~cat:"fault" ~peer:(Peer_id.to_string peer) ~ts:t.now
      ~args:[ ("reason", reason) ]
      "drop"

let at t ~time callback =
  Pqueue.push t.queue ~time:(max t.now time) (Control { callback })

let inject t plan =
  t.fault <- Some (Fault.attach plan);
  List.iter
    (function
      | Fault.Crash { peer; at_ms; restart_ms } ->
          at t ~time:at_ms (fun () -> crash t peer);
          Option.iter
            (fun r -> at t ~time:r (fun () -> restart t peer))
            restart_ms
      | Fault.Link_down _ | Fault.Partition _ ->
          (* Pure windows, consulted at send time. *)
          ())
    (Fault.events plan)

(* --- sending ----------------------------------------------------- *)

(* Per-peer send metrics mirror Stats exactly — per transmission that
   actually leaves the sender, including retransmissions and
   fault-injected duplicates; bytes count remote messages only,
   loopbacks are tallied separately — so the metrics table and
   Stats.snapshot agree to the byte. *)
let count_send_metrics ~src ~dst ~bytes ~msgs =
  if Metrics.is_on Metrics.default then begin
    let peer = Peer_id.to_string src in
    if Peer_id.equal src dst then
      Metrics.incr Metrics.default ~peer ~subsystem:"net" "local_messages"
    else begin
      Metrics.incr Metrics.default ~peer ~subsystem:"net" "messages_sent";
      Metrics.incr Metrics.default ~peer ~by:msgs ~subsystem:"net"
        "payload_messages";
      Metrics.incr Metrics.default ~peer ~by:bytes ~subsystem:"net" "bytes_sent"
    end
  end

let transmit ?note ?(msgs = 1) t ~link ~departure ~jitter_ms ~src ~dst ~bytes
    payload =
  let arrival = departure +. Link.transfer_ms link ~bytes +. jitter_ms in
  Stats.record_send ~at_ms:departure ?note ~msgs t.stats ~src ~dst ~bytes;
  count_send_metrics ~src ~dst ~bytes ~msgs;
  (* The whole instrumentation block sits behind one boolean load so
     that the disabled hot path allocates nothing (checked in the E16
     bench). *)
  if Trace.enabled () then begin
    let args =
      let base =
        [ ("dst", Peer_id.to_string dst); ("bytes", string_of_int bytes) ]
      in
      match note with Some n -> ("note", n) :: base | None -> base
    in
    Trace.complete ~cat:"net"
      ~peer:(Peer_id.to_string src)
      ~ts:departure
      ~dur_ms:(arrival -. departure)
      ~args "xfer"
  end;
  Pqueue.push t.queue ~time:arrival (Deliver { src; dst; payload })

let send ?note ?msgs t ~src ~dst ~bytes payload =
  let link = Topology.link t.topology ~src ~dst in
  let departure = max t.now (busy_until t src) in
  match t.fault with
  | None ->
      transmit ?note ?msgs t ~link ~departure ~jitter_ms:0.0 ~src ~dst ~bytes
        payload
  | Some _ when Peer_id.equal src dst ->
      (* Loopback never traverses the network; faults don't apply. *)
      transmit ?note ?msgs t ~link ~departure ~jitter_ms:0.0 ~src ~dst ~bytes
        payload
  | Some f -> (
      match Fault.on_send f ~now:departure ~src ~dst with
      | Fault.Dropped -> record_drop t ~peer:src ~reason:"link"
      | Fault.Deliver { jitters_ms } ->
          List.iter
            (fun jitter_ms ->
              transmit ?note ?msgs t ~link ~departure ~jitter_ms ~src ~dst
                ~bytes payload)
            jitters_ms)

let after_cancellable t ~peer ~delay_ms callback =
  if delay_ms < 0.0 then invalid_arg "Sim.after: negative delay";
  let cancelled = ref false in
  Pqueue.push t.queue
    ~time:(t.now +. delay_ms)
    (Timer { peer; callback; cancelled });
  fun () -> cancelled := true

let after t ~peer ~delay_ms callback =
  let (_cancel : unit -> unit) = after_cancellable t ~peer ~delay_ms callback in
  ()

let pending t = Pqueue.length t.queue

let run ?until_ms ?(max_events = 1_000_000) t =
  let processed = ref 0 in
  let more_events () =
    match (Pqueue.peek_time t.queue, until_ms) with
    | None, _ -> false
    | Some time, Some limit -> time <= limit
    | Some _, None -> true
  in
  let continue () = !processed < max_events && more_events () in
  while continue () do
    match Pqueue.pop t.queue with
    | None -> ()
    | Some (_, Timer { cancelled; _ }) when !cancelled ->
        (* A cancelled timer (e.g. a retransmission pre-empted by its
           ack) is discarded before the clock advances: it must not
           stretch the run's completion time past the last real
           event. *)
        ()
    | Some (time, event) ->
        t.now <- max t.now time;
        incr processed;
        if Metrics.is_on Metrics.default then begin
          Metrics.incr Metrics.default ~subsystem:"sim" "events";
          Metrics.gauge_max Metrics.default ~subsystem:"sim" "queue_depth"
            (float_of_int (Pqueue.length t.queue + 1))
        end;
        (match event with
        | Deliver { src; dst; payload } -> (
            Stats.record_time t.stats t.now;
            (* A message arriving at a dead (or never-installed)
               destination is a routable fault, not an abort: the
               bytes were spent, the payload is gone, the run goes
               on.  Counted in net/drops. *)
            if is_crashed t dst then record_drop t ~peer:dst ~reason:"crashed"
            else
              match Peer_id.Table.find_opt t.handlers dst with
              | None -> record_drop t ~peer:dst ~reason:"no-handler"
              | Some handler ->
                  if Trace.enabled () then begin
                    let sid =
                      Trace.begin_span ~cat:"sim"
                        ~peer:(Peer_id.to_string dst)
                        ~ts:t.now
                        ~args:[ ("src", Peer_id.to_string src) ]
                        "deliver"
                    in
                    handler ~src payload;
                    (* The handler's virtual footprint: any CPU it
                       consumed pushed the peer's busy horizon past
                       [now]. *)
                    Trace.end_span sid ~ts:(max t.now (busy_until t dst))
                  end
                  else handler ~src payload)
        | Timer { peer; callback; cancelled = _ } ->
            Stats.record_time t.stats t.now;
            (* Timers model volatile local state; a crashed peer's
               timers fire into the void. *)
            if not (is_crashed t peer) then
              if Trace.enabled () then begin
                let sid =
                  Trace.begin_span ~cat:"sim"
                    ~peer:(Peer_id.to_string peer)
                    ~ts:t.now "timer"
                in
                callback ();
                Trace.end_span sid ~ts:(max t.now (busy_until t peer))
              end
              else callback ()
        | Control { callback } -> callback ())
  done;
  let outcome : outcome =
    if !processed >= max_events && more_events () then `Budget_exhausted
    else `Quiescent
  in
  (outcome, !processed)
