module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics

type 'a event =
  | Deliver of { src : Peer_id.t; dst : Peer_id.t; payload : 'a }
  | Timer of { peer : Peer_id.t; callback : unit -> unit }

type 'a t = {
  topology : Topology.t;
  queue : 'a event Pqueue.t;
  handlers : (src:Peer_id.t -> 'a -> unit) Peer_id.Table.t;
  busy : float Peer_id.Table.t;
  cpu_factors : float Peer_id.Table.t;
  stats : Stats.t;
  mutable now : float;
}

type outcome = [ `Quiescent | `Budget_exhausted ]

exception No_handler of Peer_id.t

let create topology =
  {
    topology;
    queue = Pqueue.create ();
    handlers = Peer_id.Table.create 16;
    busy = Peer_id.Table.create 16;
    cpu_factors = Peer_id.Table.create 16;
    stats = Stats.create ();
    now = 0.0;
  }

let topology t = t.topology
let now t = t.now
let stats t = t.stats
let set_handler t peer f = Peer_id.Table.replace t.handlers peer f

let busy_until t peer =
  Option.value ~default:0.0 (Peer_id.Table.find_opt t.busy peer)

let cpu_factor t peer =
  Option.value ~default:1.0 (Peer_id.Table.find_opt t.cpu_factors peer)

let set_cpu_factor t peer factor =
  if factor <= 0.0 then invalid_arg "Sim.set_cpu_factor: factor must be positive";
  Peer_id.Table.replace t.cpu_factors peer factor

let consume_cpu t ~peer ~ms =
  if ms < 0.0 then invalid_arg "Sim.consume_cpu: negative duration";
  let virtual_ms = ms *. cpu_factor t peer in
  let horizon = max t.now (busy_until t peer) +. virtual_ms in
  Peer_id.Table.replace t.busy peer horizon;
  if Metrics.is_on Metrics.default then
    Metrics.observe Metrics.default ~peer:(Peer_id.to_string peer)
      ~subsystem:"peer" "cpu_ms" virtual_ms;
  (* Computation extends the run's completion time even when no
     further message departs from this peer. *)
  Stats.record_time t.stats horizon

let send ?note t ~src ~dst ~bytes payload =
  let link = Topology.link t.topology ~src ~dst in
  let departure = max t.now (busy_until t src) in
  let arrival = departure +. Link.transfer_ms link ~bytes in
  Stats.record_send ~at_ms:departure ?note t.stats ~src ~dst ~bytes;
  (* The whole instrumentation block sits behind one boolean load so
     that the disabled hot path allocates nothing (checked in the E16
     bench). *)
  if Trace.enabled () then begin
    let args =
      let base =
        [ ("dst", Peer_id.to_string dst); ("bytes", string_of_int bytes) ]
      in
      match note with Some n -> ("note", n) :: base | None -> base
    in
    Trace.complete ~cat:"net"
      ~peer:(Peer_id.to_string src)
      ~ts:departure
      ~dur_ms:(arrival -. departure)
      ~args "xfer"
  end;
  Pqueue.push t.queue ~time:arrival (Deliver { src; dst; payload })

let after t ~peer ~delay_ms callback =
  if delay_ms < 0.0 then invalid_arg "Sim.after: negative delay";
  Pqueue.push t.queue ~time:(t.now +. delay_ms) (Timer { peer; callback })

let pending t = Pqueue.length t.queue

let run ?until_ms ?(max_events = 1_000_000) t =
  let processed = ref 0 in
  let more_events () =
    match (Pqueue.peek_time t.queue, until_ms) with
    | None, _ -> false
    | Some time, Some limit -> time <= limit
    | Some _, None -> true
  in
  let continue () = !processed < max_events && more_events () in
  while continue () do
    match Pqueue.pop t.queue with
    | None -> ()
    | Some (time, event) ->
        t.now <- max t.now time;
        Stats.record_time t.stats t.now;
        incr processed;
        if Metrics.is_on Metrics.default then begin
          Metrics.incr Metrics.default ~subsystem:"sim" "events";
          Metrics.gauge_max Metrics.default ~subsystem:"sim" "queue_depth"
            (float_of_int (Pqueue.length t.queue + 1))
        end;
        (match event with
        | Deliver { src; dst; payload } -> (
            match Peer_id.Table.find_opt t.handlers dst with
            | None -> raise (No_handler dst)
            | Some handler ->
                if Trace.enabled () then begin
                  let sid =
                    Trace.begin_span ~cat:"sim"
                      ~peer:(Peer_id.to_string dst)
                      ~ts:t.now
                      ~args:[ ("src", Peer_id.to_string src) ]
                      "deliver"
                  in
                  handler ~src payload;
                  (* The handler's virtual footprint: any CPU it
                     consumed pushed the peer's busy horizon past
                     [now]. *)
                  Trace.end_span sid ~ts:(max t.now (busy_until t dst))
                end
                else handler ~src payload)
        | Timer { peer; callback } ->
            if Trace.enabled () then begin
              let sid =
                Trace.begin_span ~cat:"sim"
                  ~peer:(Peer_id.to_string peer)
                  ~ts:t.now "timer"
              in
              callback ();
              Trace.end_span sid ~ts:(max t.now (busy_until t peer))
            end
            else callback ())
  done;
  let outcome : outcome =
    if !processed >= max_events && more_events () then `Budget_exhausted
    else `Quiescent
  in
  (outcome, !processed)
