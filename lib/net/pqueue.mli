(** Priority queue of timestamped events.

    An array binary heap keyed by [(time, sequence)] — among equal
    times, insertion order wins, which makes simulator runs
    deterministic — with a FIFO fast path for runs of events sharing
    the current minimum time, and removable entries that are excluded
    from {!length} as soon as they are cancelled (the heap compacts
    once cancelled entries outnumber live ones). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
(** Live entries only: cancelled ones don't count. *)

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument if [time] is NaN. *)

val push_removable : 'a t -> time:float -> 'a -> unit -> unit
(** Like {!push}, but returns a cancel thunk.  Cancelling is O(1)
    (amortized: it may trigger compaction), idempotent, and a no-op
    once the entry has been popped; a cancelled entry is never
    returned by {!pop} and stops counting toward {!length}
    immediately.
    @raise Invalid_argument if [time] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

exception Empty

val take : 'a t -> 'a
(** Allocation-free {!pop} for hot loops: removes and returns the
    earliest event, leaving its timestamp readable via {!last_time}.
    @raise Empty when the queue has no live entries. *)

val last_time : 'a t -> float
(** Timestamp of the event most recently removed by {!take}. *)

val peek_time : 'a t -> float option
val clear : 'a t -> unit
