(* Interned identifiers: one record per distinct name, process-wide.
   [name] comes first so that polymorphic compare on values (and on
   tuples containing them, e.g. Stats per-link keys) still orders by
   name, exactly as the previous [type t = string] representation did.
   [idx] is a dense creation-order index used as a direct array
   subscript by the simulator's per-peer slots. *)
type t = { name : string; idx : int }

let valid s =
  String.length s > 0
  && not
       (String.exists
          (fun c -> c = '@' || c = ' ' || c = '\t' || c = '\n' || c = '\r')
          s)

let intern : (string, t) Hashtbl.t = Hashtbl.create 256
let next_idx = ref 0

let of_string_opt s =
  match Hashtbl.find_opt intern s with
  | Some _ as p -> p
  | None ->
      if valid s then begin
        let p = { name = s; idx = !next_idx } in
        incr next_idx;
        Hashtbl.add intern s p;
        Some p
      end
      else None

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Peer_id.of_string: %S" s)

let to_string p = p.name
let index p = p.idx
let equal p q = p.idx = q.idx
let compare p q = String.compare p.name q.name
let hash p = Hashtbl.hash p.name
let pp fmt p = Format.pp_print_string fmt p.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Table = Hashtbl.Make (Hashed)
