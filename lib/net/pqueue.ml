(* Priority queue of timestamped events, keyed by [(time, sequence)]:
   among equal times, insertion order wins, which makes simulator runs
   deterministic.

   The representation is built for the simulator's hot loop (millions
   of push/pop pairs per run):

   - a binary min-heap over parallel arrays — an unboxed [float array]
     of times, an [int array] of sequence numbers and a value array —
     so a push is three stores and a sift, with no per-node
     allocation (the previous pairing heap allocated a node and a
     list cell per push);

   - a monotonic same-time fast path: a FIFO ring holding a run of
     events that share the current minimum time.  The ring is
     established only when it is empty and the incoming time is
     strictly below the heap minimum (equal times must go to the heap,
     where earlier sequence numbers already live); while it is
     non-empty, pushes at exactly its time append to it and pops drain
     it before the heap.  Because the total order is (time, seq), the
     split never reorders anything;

   - removable entries ({!push_removable}): cancellation marks the
     entry dead in place and the structure compacts once dead entries
     outnumber live ones, so cancelled timers neither inflate
     {!length} nor accumulate in the heap (they used to sit there
     until popped). *)

type cell = { mutable pos : int; mutable dead : bool }

let no_cell = { pos = -2; dead = false }

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable cells : cell array;
  mutable size : int;  (** heap slots used, dead entries included *)
  mutable dead : int;  (** cancelled entries still physically in the heap *)
  mutable next_seq : int;
  mutable ring_vals : 'a array;
  mutable ring_head : int;
  mutable ring_len : int;
  mutable ring_time : float;  (** meaningful iff [ring_len > 0] *)
  mutable last_time : float;  (** timestamp of the last {!take}n event *)
}

exception Empty

let dummy : 'a. unit -> 'a = fun () -> Obj.magic 0

let create () =
  {
    times = Array.make 64 0.0;
    seqs = Array.make 64 0;
    vals = Array.make 64 (dummy ());
    cells = Array.make 64 no_cell;
    size = 0;
    dead = 0;
    next_seq = 0;
    ring_vals = Array.make 64 (dummy ());
    ring_head = 0;
    ring_len = 0;
    ring_time = 0.0;
    last_time = 0.0;
  }

let length t = t.size - t.dead + t.ring_len
let is_empty t = length t = 0

(* --- heap primitives --------------------------------------------- *)

let before t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let set_slot t i ~time ~seq v cell =
  t.times.(i) <- time;
  t.seqs.(i) <- seq;
  t.vals.(i) <- v;
  t.cells.(i) <- cell;
  if cell != no_cell then cell.pos <- i

let move t ~src ~dst =
  set_slot t dst ~time:t.times.(src) ~seq:t.seqs.(src) t.vals.(src)
    t.cells.(src)

let grow t =
  let cap = Array.length t.times in
  let cap' = 2 * cap in
  let times = Array.make cap' 0.0 in
  Array.blit t.times 0 times 0 cap;
  t.times <- times;
  let seqs = Array.make cap' 0 in
  Array.blit t.seqs 0 seqs 0 cap;
  t.seqs <- seqs;
  let vals = Array.make cap' (dummy ()) in
  Array.blit t.vals 0 vals 0 cap;
  t.vals <- vals;
  let cells = Array.make cap' no_cell in
  Array.blit t.cells 0 cells 0 cap;
  t.cells <- cells

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      let time = t.times.(i) and seq = t.seqs.(i) in
      let v = t.vals.(i) and c = t.cells.(i) in
      move t ~src:parent ~dst:i;
      set_slot t parent ~time ~seq v c;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let smallest = if l + 1 < t.size && before t (l + 1) l then l + 1 else l in
    if before t smallest i then begin
      let time = t.times.(i) and seq = t.seqs.(i) in
      let v = t.vals.(i) and c = t.cells.(i) in
      move t ~src:smallest ~dst:i;
      set_slot t smallest ~time ~seq v c;
      sift_down t smallest
    end
  end

let heap_push t ~time ~seq v cell =
  if t.size = Array.length t.times then grow t;
  set_slot t t.size ~time ~seq v cell;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Remove the root; the caller has already read it. *)
let heap_drop_root t =
  let c = t.cells.(0) in
  if c != no_cell then c.pos <- -1;
  t.size <- t.size - 1;
  if t.size > 0 then begin
    move t ~src:t.size ~dst:0;
    t.vals.(t.size) <- dummy ();
    t.cells.(t.size) <- no_cell;
    sift_down t 0
  end
  else begin
    t.vals.(0) <- dummy ();
    t.cells.(0) <- no_cell
  end

(* Cancelled entries are skipped lazily; purging them at the root keeps
   [peek_time] and the pop path honest without touching the interior. *)
let rec purge_dead_roots t =
  if t.size > 0 && t.cells.(0).dead then begin
    heap_drop_root t;
    t.dead <- t.dead - 1;
    purge_dead_roots t
  end

(* --- ring primitives --------------------------------------------- *)

let ring_push t v =
  let cap = Array.length t.ring_vals in
  if t.ring_len = cap then begin
    let vals = Array.make (2 * cap) (dummy ()) in
    for k = 0 to t.ring_len - 1 do
      vals.(k) <- t.ring_vals.((t.ring_head + k) mod cap)
    done;
    t.ring_vals <- vals;
    t.ring_head <- 0
  end;
  t.ring_vals.((t.ring_head + t.ring_len) mod Array.length t.ring_vals) <- v;
  t.ring_len <- t.ring_len + 1

let ring_pop t =
  let v = t.ring_vals.(t.ring_head) in
  t.ring_vals.(t.ring_head) <- dummy ();
  t.ring_head <- (t.ring_head + 1) mod Array.length t.ring_vals;
  t.ring_len <- t.ring_len - 1;
  v

(* Spill the ring into the heap, oldest first, assigning fresh sequence
   numbers from the counter.  Exact because the heap holds no entry at
   [ring_time] while the ring is active (establishment requires a
   strictly smaller time), so only the ring's relative order matters —
   which fresh increasing seqs preserve — and future pushes draw even
   larger seqs. *)
let flush_ring t =
  let n = t.ring_len in
  for _ = 1 to n do
    let v = ring_pop t in
    let seq = t.next_seq in
    t.next_seq <- t.next_seq + 1;
    heap_push t ~time:t.ring_time ~seq v no_cell
  done

(* --- public API --------------------------------------------------- *)

let push t ~time v =
  if Float.is_nan time then invalid_arg "Pqueue.push: NaN time";
  if t.ring_len > 0 && time = t.ring_time then begin
    t.next_seq <- t.next_seq + 1;
    ring_push t v
  end
  else begin
    purge_dead_roots t;
    let seq = t.next_seq in
    t.next_seq <- t.next_seq + 1;
    if t.ring_len = 0 && (t.size = 0 || time < t.times.(0)) then begin
      t.ring_time <- time;
      ring_push t v
    end
    else heap_push t ~time ~seq v no_cell
  end

let compact t =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let c = t.cells.(i) in
    if c.dead then c.pos <- -1
    else begin
      if i <> !j then move t ~src:i ~dst:!j;
      incr j
    end
  done;
  for k = !j to t.size - 1 do
    t.vals.(k) <- dummy ();
    t.cells.(k) <- no_cell
  done;
  t.size <- !j;
  t.dead <- 0;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let push_removable t ~time v =
  if Float.is_nan time then invalid_arg "Pqueue.push_removable: NaN time";
  (* Removable entries always live in the heap (a cancelled ring slot
     could not be compacted away).  If the ring is active at exactly
     this time, it is flushed first so FIFO order across the two
     structures survives. *)
  if t.ring_len > 0 && time = t.ring_time then flush_ring t;
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let cell = { pos = -1; dead = false } in
  heap_push t ~time ~seq v cell;
  fun () ->
    if (not cell.dead) && cell.pos >= 0 then begin
      cell.dead <- true;
      t.dead <- t.dead + 1;
      if 2 * t.dead > t.size then compact t
    end

let pop t =
  purge_dead_roots t;
  if t.ring_len > 0 && (t.size = 0 || t.ring_time <= t.times.(0)) then
    Some (t.ring_time, ring_pop t)
  else if t.size = 0 then None
  else begin
    let time = t.times.(0) and v = t.vals.(0) in
    heap_drop_root t;
    Some (time, v)
  end

(* Allocation-free pop for the simulator's hot loop: the minimum's
   timestamp is left in [last_time] (read it with {!last_time}) instead
   of being returned in a boxed pair. *)
let take t =
  purge_dead_roots t;
  if t.ring_len > 0 && (t.size = 0 || t.ring_time <= t.times.(0)) then begin
    t.last_time <- t.ring_time;
    ring_pop t
  end
  else if t.size = 0 then raise Empty
  else begin
    t.last_time <- t.times.(0);
    let v = t.vals.(0) in
    heap_drop_root t;
    v
  end

let last_time t = t.last_time

let peek_time t =
  purge_dead_roots t;
  if t.ring_len > 0 && (t.size = 0 || t.ring_time <= t.times.(0)) then
    Some t.ring_time
  else if t.size = 0 then None
  else Some t.times.(0)

let clear t =
  for i = 0 to t.size - 1 do
    t.vals.(i) <- dummy ();
    let c = t.cells.(i) in
    if c != no_cell then c.pos <- -1;
    t.cells.(i) <- no_cell
  done;
  t.size <- 0;
  t.dead <- 0;
  for k = 0 to Array.length t.ring_vals - 1 do
    t.ring_vals.(k) <- dummy ()
  done;
  t.ring_head <- 0;
  t.ring_len <- 0
