module Pmap = Peer_id.Map

type t = {
  peer_list : Peer_id.t list;
  member : bool array;  (** indexed by dense {!Peer_id.index} *)
  links : Link.t Pmap.t Pmap.t;  (** src -> dst -> link *)
  default : Peer_id.t -> Peer_id.t -> Link.t;
}

let peers t = t.peer_list

(* O(1): membership by dense index — the per-send Set.mem did
   O(log n) string comparisons. *)
let mem t p =
  let i = Peer_id.index p in
  i < Array.length t.member && t.member.(i)

let link t ~src ~dst =
  if not (mem t src && mem t dst) then raise Not_found;
  if Peer_id.equal src dst then Link.local
  else if Pmap.is_empty t.links then
    (* Builder topologies carry no per-pair overrides: skip straight to
       the default link function. *)
    t.default src dst
  else
    match Pmap.find_opt src t.links |> Fun.flip Option.bind (Pmap.find_opt dst) with
    | Some l -> l
    | None -> t.default src dst

let override t ~src ~dst l =
  let row = Option.value ~default:Pmap.empty (Pmap.find_opt src t.links) in
  { t with links = Pmap.add src (Pmap.add dst l row) t.links }

let base peer_list default =
  let top =
    List.fold_left (fun acc p -> max acc (Peer_id.index p)) (-1) peer_list
  in
  let member = Array.make (top + 1) false in
  List.iter (fun p -> member.(Peer_id.index p) <- true) peer_list;
  { peer_list; member; links = Pmap.empty; default }

let full_mesh ~link peer_list = base peer_list (fun _ _ -> link)

let scale l factor =
  Link.make
    ~latency_ms:(l.Link.latency_ms *. factor)
    ~bandwidth_bytes_per_ms:(l.Link.bandwidth_bytes_per_ms /. factor)

let star ~hub ~spoke_link peer_list =
  let default src dst =
    if Peer_id.equal src hub || Peer_id.equal dst hub then spoke_link
    else scale spoke_link 2.0
  in
  base peer_list default

let ring ~hop_link peer_list =
  let arr = Array.of_list peer_list in
  let n = Array.length arr in
  let index p =
    let rec go i = if Peer_id.equal arr.(i) p then i else go (i + 1) in
    go 0
  in
  let default src dst =
    let d = abs (index src - index dst) in
    let hops = min d (n - d) in
    scale hop_link (float_of_int (max 1 hops))
  in
  base peer_list default

let clustered ~intra ~inter clusters =
  let peer_list = List.concat clusters in
  let cluster_of =
    (* Dense-index lookup: the per-send string-keyed hash probe is an
       array load. *)
    let top =
      List.fold_left (fun acc p -> max acc (Peer_id.index p)) (-1) peer_list
    in
    let arr = Array.make (top + 1) (-1) in
    List.iteri
      (fun ci members ->
        List.iter (fun p -> arr.(Peer_id.index p) <- ci) members)
      clusters;
    fun p -> arr.(Peer_id.index p)
  in
  let default src dst =
    if cluster_of src = cluster_of dst then intra else inter
  in
  base peer_list default

let of_links ~default links peer_list =
  List.fold_left
    (fun t (src, dst, l) -> override t ~src ~dst l)
    (base peer_list (fun _ _ -> default))
    links

let pp fmt t =
  Format.fprintf fmt "@[<v>topology over {%s}@]"
    (String.concat ", " (List.map Peer_id.to_string t.peer_list))
