(* Deterministic fault injection.

   A fault plan is pure data: probabilistic link behaviour (drop /
   duplicate / jitter), scheduled link outages and partitions, and
   peer crash/restart events. A plan is attached to a simulator with
   [Sim.inject]; every probabilistic decision is drawn from a
   SplitMix64 stream seeded by the plan, and consulted in event
   order, so a (plan, workload) pair replays bit-identically. *)

type link_profile = { drop : float; duplicate : float; jitter_ms : float }

let perfect = { drop = 0.0; duplicate = 0.0; jitter_ms = 0.0 }

type window = { from_ms : float; until_ms : float }

let window ~from_ms ~until_ms =
  if until_ms < from_ms then invalid_arg "Fault.window: until < from";
  { from_ms; until_ms }

let in_window w now = now >= w.from_ms && now < w.until_ms

type event =
  | Link_down of { src : Peer_id.t; dst : Peer_id.t; window : window }
  | Partition of { island : Peer_id.t list; window : window }
  | Crash of { peer : Peer_id.t; at_ms : float; restart_ms : float option }

type plan = {
  seed : int;
  profile : link_profile;
  overrides : ((Peer_id.t * Peer_id.t) * link_profile) list;
  events : event list;
  quiet_after_ms : float;
}

let check_profile p =
  if p.drop < 0.0 || p.drop > 1.0 then invalid_arg "Fault: drop not in [0,1]";
  if p.duplicate < 0.0 || p.duplicate > 1.0 then
    invalid_arg "Fault: duplicate not in [0,1]";
  if p.jitter_ms < 0.0 then invalid_arg "Fault: negative jitter"

let make ?(profile = perfect) ?(overrides = []) ?(events = [])
    ?(quiet_after_ms = infinity) ~seed () =
  check_profile profile;
  List.iter (fun (_, p) -> check_profile p) overrides;
  { seed; profile; overrides; events; quiet_after_ms }

let seed p = p.seed
let events p = p.events
let quiet_after_ms p = p.quiet_after_ms

(* --- random plans ------------------------------------------------ *)

(* Crashes are deliberately absent from random plans: a crash wipes
   volatile continuations, so result-equality with the fault-free run
   is not a theorem under random crashes. Crash recovery is covered
   by directed tests instead (test/test_fault.ml). *)
let random ?(max_drop = 0.3) ?(max_duplicate = 0.15) ?(max_jitter_ms = 8.0)
    ?(max_outages = 3) ?(horizon_ms = 400.0) ~seed peers =
  if peers = [] then invalid_arg "Fault.random: no peers";
  let rng = Rng.create ~seed in
  let profile =
    {
      drop = Rng.float rng max_drop;
      duplicate = Rng.float rng max_duplicate;
      jitter_ms = Rng.float rng max_jitter_ms;
    }
  in
  let outage () =
    let from_ms = Rng.float rng horizon_ms in
    let until_ms =
      min horizon_ms (from_ms +. Rng.float rng (horizon_ms /. 2.0))
    in
    let w = window ~from_ms ~until_ms in
    if List.length peers >= 2 && Rng.bool rng then
      let src = Rng.pick rng peers in
      let dst = Rng.pick rng (List.filter (fun p -> p <> src) peers) in
      Link_down { src; dst; window = w }
    else
      let island =
        List.filter (fun _ -> Rng.bool rng) peers |> function
        | [] -> [ List.hd peers ]
        | l -> l
      in
      Partition { island; window = w }
  in
  let events = List.init (Rng.int rng (max_outages + 1)) (fun _ -> outage ()) in
  (* Probabilistic faults cease after the horizon, and every outage
     window closes by then: connectivity is eventually restored, so a
     reliable transport can always finish the job. *)
  make ~profile ~events ~quiet_after_ms:horizon_ms ~seed ()

(* --- attached state ---------------------------------------------- *)

type state = { plan : plan; rng : Rng.t }

let attach plan = { plan; rng = Rng.create ~seed:plan.seed }

let profile_for st ~src ~dst =
  match
    List.find_opt
      (fun ((s, d), _) -> Peer_id.equal s src && Peer_id.equal d dst)
      st.plan.overrides
  with
  | Some (_, p) -> p
  | None -> st.plan.profile

let cut st ~now ~src ~dst =
  List.exists
    (function
      | Link_down { src = s; dst = d; window } ->
          in_window window now
          && ((Peer_id.equal s src && Peer_id.equal d dst)
             || (Peer_id.equal s dst && Peer_id.equal d src))
      | Partition { island; window } ->
          in_window window now
          && List.exists (Peer_id.equal src) island
             <> List.exists (Peer_id.equal dst) island
      | Crash _ -> false)
    st.plan.events

type verdict = Dropped | Deliver of { jitters_ms : float list }

(* One verdict per send attempt. Note the RNG is consulted only while
   probabilistic faults are live ([now < quiet_after_ms]): skipping
   the draws entirely afterwards keeps the stream aligned no matter
   how many extra retransmissions a lossy prefix provoked. *)
let on_send st ~now ~src ~dst =
  if cut st ~now ~src ~dst then Dropped
  else if now >= st.plan.quiet_after_ms then
    Deliver { jitters_ms = [ 0.0 ] }
  else
    let p = profile_for st ~src ~dst in
    if p.drop > 0.0 && Rng.float st.rng 1.0 < p.drop then Dropped
    else
      let jitter () =
        if p.jitter_ms > 0.0 then Rng.float st.rng p.jitter_ms else 0.0
      in
      let first = jitter () in
      if p.duplicate > 0.0 && Rng.float st.rng 1.0 < p.duplicate then
        Deliver { jitters_ms = [ first; jitter () ] }
      else Deliver { jitters_ms = [ first ] }

let pp_event ppf = function
  | Link_down { src; dst; window } ->
      Format.fprintf ppf "link-down %a->%a [%g,%g)ms" Peer_id.pp src Peer_id.pp
        dst window.from_ms window.until_ms
  | Partition { island; window } ->
      Format.fprintf ppf "partition {%a} [%g,%g)ms"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Peer_id.pp)
        island window.from_ms window.until_ms
  | Crash { peer; at_ms; restart_ms } ->
      Format.fprintf ppf "crash %a at %gms%a" Peer_id.pp peer at_ms
        (fun ppf -> function
          | None -> ()
          | Some r -> Format.fprintf ppf " restart %gms" r)
        restart_ms

let pp ppf plan =
  Format.fprintf ppf
    "@[<v>fault plan seed=%d drop=%.3f dup=%.3f jitter=%.2fms quiet-after=%gms"
    plan.seed plan.profile.drop plan.profile.duplicate plan.profile.jitter_ms
    plan.quiet_after_ms;
  List.iter (fun e -> Format.fprintf ppf "@,  %a" pp_event e) plan.events;
  Format.fprintf ppf "@]"
