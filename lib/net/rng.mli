(** Deterministic pseudo-random numbers (SplitMix64).

    Workload generation and fault injection must be reproducible
    across runs and independent of any global state, so generators
    carry their own streams. Lives in the net layer so {!Fault} can
    draw from it; [Axml_workload.Rng] re-exports this module. *)

type t

val create : seed:int -> t
val split : t -> t
(** An independent stream derived from this one. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool
val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a list -> 'a list
